package analysis

import "testing"

const nondetScope = "mpgraph/internal/core/fixture"

func TestNondetFlagsClockRandAndMapRange(t *testing.T) {
	res := runFixture(t, NondetAnalyzer, nondetScope, "internal/core/fixture/bad.go", `
package fixture

import (
	"math/rand"
	"time"
)

func Bad(m map[int]float64) float64 {
	start := time.Now()
	_ = start
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum + rand.Float64()
}
`)
	wantOutstanding(t, res,
		"math/rand imported in a deterministic package",
		"time.Now in a deterministic package",
		"map iteration order is nondeterministic",
	)
}

func TestNondetAllowsCollectThenSort(t *testing.T) {
	res := runFixture(t, NondetAnalyzer, nondetScope, "internal/core/fixture/good.go", `
package fixture

import "sort"

func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
`)
	wantOutstanding(t, res)
}

func TestNondetOutsideScope(t *testing.T) {
	// The observability layer may read the clock.
	res := runFixture(t, NondetAnalyzer, "mpgraph/internal/obsv/fixture", "internal/obsv/fixture/clock.go", `
package fixture

import "time"

func Stamp() time.Time { return time.Now() }
`)
	wantOutstanding(t, res)
}

func TestNondetSuppression(t *testing.T) {
	res := runFixture(t, NondetAnalyzer, nondetScope, "internal/core/fixture/supp.go", `
package fixture

func Sum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { //mpg:lint-ignore nondet demonstration fixture: order-insensitive integer max
		if v > sum {
			sum = v
		}
	}
	return sum
}
`)
	wantOutstanding(t, res)
	wantSuppressed(t, res, 1)
}
