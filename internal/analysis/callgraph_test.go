package analysis

import (
	"strings"
	"testing"
)

// fixtureSource is one in-memory file of a fixture module package.
type fixtureSource struct {
	importPath string
	filename   string
	src        string
}

// buildFixtureGraph type-checks the fixture packages in order (so
// later packages can import earlier ones) and builds their call
// graph.
func buildFixtureGraph(t *testing.T, files ...fixtureSource) *CallGraph {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var pkgs []*Package
	for _, f := range files {
		pkg, err := l.CheckSource(f.importPath, f.filename, f.src)
		if err != nil {
			t.Fatalf("CheckSource(%s): %v", f.filename, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return BuildCallGraph(pkgs)
}

// edgeStrings renders a node's outgoing edges as "kind target".
func edgeStrings(n *FuncNode) []string {
	var out []string
	for i := range n.Calls {
		e := &n.Calls[i]
		switch e.Kind {
		case EdgeStatic:
			out = append(out, "static "+e.Callee.Name)
		case EdgeExternal:
			out = append(out, "external "+e.ExtPkg+"."+e.ExtName)
		default:
			out = append(out, "unknown")
		}
	}
	return out
}

// TestCallGraphResolution pins the edge classification for every call
// shape the resolver distinguishes. Each case declares a caller A and
// asserts A's outgoing edges in source order.
func TestCallGraphResolution(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // edges of fixture.A in order
	}{
		{
			name: "direct function call",
			src: `package fixture
func A() { B() }
func B() {}
`,
			want: []string{"static fixture.B"},
		},
		{
			name: "method on concrete value receiver",
			src: `package fixture
type T struct{}
func (T) M() {}
func A() { var t T; t.M() }
`,
			want: []string{"static fixture.(T).M"},
		},
		{
			name: "method on pointer receiver via addressable value",
			src: `package fixture
type T struct{}
func (t *T) P() {}
func A() { var t T; t.P() }
`,
			want: []string{"static fixture.(*T).P"},
		},
		{
			name: "method promoted through embedding",
			src: `package fixture
type Inner struct{}
func (Inner) M() {}
type Outer struct{ Inner }
func A() { var o Outer; o.M() }
`,
			want: []string{"static fixture.(Inner).M"},
		},
		{
			name: "interface dispatch is unknown, not dropped",
			src: `package fixture
type I interface{ M() }
func A(i I) { i.M() }
`,
			want: []string{"unknown"},
		},
		{
			name: "call through function-typed parameter is unknown",
			src: `package fixture
func A(f func()) { f() }
`,
			want: []string{"unknown"},
		},
		{
			name: "call through stored method value is unknown",
			src: `package fixture
type T struct{}
func (T) M() {}
func A() { var t T; m := t.M; m() }
`,
			want: []string{"unknown"},
		},
		{
			name: "single-assignment local closure resolves without tainting",
			src: `package fixture
func A() { f := func() { B() }; f() }
func B() {}
`,
			// f() produces no edge of its own; the literal's B() call is
			// attributed to A.
			want: []string{"static fixture.B"},
		},
		{
			name: "reassigned closure variable taints back to unknown",
			src: `package fixture
func A(cond bool) {
	f := func() {}
	if cond {
		f = func() {}
	}
	f()
}
`,
			want: []string{"unknown"},
		},
		{
			name: "address-taken closure variable taints back to unknown",
			src: `package fixture
func A() {
	f := func() {}
	rebind(&f)
	f()
}
func rebind(p *func()) {}
`,
			want: []string{"static fixture.rebind", "unknown"},
		},
		{
			name: "immediately-invoked literal contributes body edges only",
			src: `package fixture
func A() { func() { B() }() }
func B() {}
`,
			want: []string{"static fixture.B"},
		},
		{
			name: "generic instantiation resolves the underlying function",
			src: `package fixture
func G[T any](x T) {}
func A() { G[int](1) }
`,
			want: []string{"static fixture.G"},
		},
		{
			name: "conversions and builtins produce no edges",
			src: `package fixture
type F float64
func A(xs []int) int {
	_ = F(1)
	xs = append(xs, 0)
	return len(xs)
}
`,
			want: nil,
		},
		{
			name: "stdlib call is external with package path and name",
			src: `package fixture
import "time"
func A() { time.Sleep(0) }
`,
			want: []string{"external time.Sleep"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildFixtureGraph(t, fixtureSource{
				"mpgraph/internal/core/fixture", "internal/core/fixture/cg.go", tc.src,
			})
			n := g.NodeByName("fixture.A")
			if n == nil {
				t.Fatal("node fixture.A not found")
			}
			got := edgeStrings(n)
			if len(got) != len(tc.want) {
				t.Fatalf("edges = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("edge %d = %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestCallGraphCrossPackage assembles two fixture packages where one
// imports the other and asserts the call resolves to a static edge
// into the imported package's node.
func TestCallGraphCrossPackage(t *testing.T) {
	g := buildFixtureGraph(t,
		fixtureSource{
			"mpgraph/internal/core/fixture/dep", "internal/core/fixture/dep/dep.go", `package dep
func Helper() {}
`,
		},
		fixtureSource{
			"mpgraph/internal/core/fixture", "internal/core/fixture/use.go", `package fixture
import "mpgraph/internal/core/fixture/dep"
func A() { dep.Helper() }
`,
		},
	)
	n := g.NodeByName("fixture.A")
	if n == nil {
		t.Fatal("node fixture.A not found")
	}
	got := edgeStrings(n)
	if len(got) != 1 || got[0] != "static dep.Helper" {
		t.Fatalf("edges = %v, want [static dep.Helper]", got)
	}
	if callee := g.NodeByName("dep.Helper"); callee == nil {
		t.Error("imported package's function has no node of its own")
	}
}

// TestReachHandlesCycles: mutual recursion terminates and both nodes
// land in the closure.
func TestReachHandlesCycles(t *testing.T) {
	g := buildFixtureGraph(t, fixtureSource{
		"mpgraph/internal/core/fixture", "internal/core/fixture/cycle.go", `package fixture
func A(n int) { if n > 0 { B(n - 1) } }
func B(n int) { if n > 0 { A(n - 1) } }
`,
	})
	roots := []*FuncNode{g.NodeByName("fixture.A")}
	visited := g.Reach("hotpathprop", roots, nil)
	if len(visited) != 2 {
		t.Fatalf("closure has %d nodes, want 2 (A and B)", len(visited))
	}
	if _, ok := visited[g.NodeByName("fixture.B")]; !ok {
		t.Error("B not reached through the cycle")
	}
}

// TestReachChain reconstructs the shortest root-first call chain.
func TestReachChain(t *testing.T) {
	g := buildFixtureGraph(t, fixtureSource{
		"mpgraph/internal/core/fixture", "internal/core/fixture/chain.go", `package fixture
func A() { B() }
func B() { C() }
func C() {}
`,
	})
	visited := g.Reach("hotpathprop", []*FuncNode{g.NodeByName("fixture.A")}, nil)
	got := Chain(visited, g.NodeByName("fixture.C"))
	want := "fixture.A → fixture.B → fixture.C"
	if got != want {
		t.Errorf("Chain = %q, want %q", got, want)
	}
}

// TestReachEdgePruning: an //mpg:lint-ignore directive for the
// traversing analyzer at the call-site line removes the edge from the
// closure and surfaces it through the pruned callback; other
// analyzers' closures keep the edge.
func TestReachEdgePruning(t *testing.T) {
	g := buildFixtureGraph(t, fixtureSource{
		"mpgraph/internal/core/fixture", "internal/core/fixture/prune.go", `package fixture
func A() {
	B() //mpg:lint-ignore hotpathprop out-of-band boundary for the test
}
func B() {}
`,
	})
	var prunedTargets []string
	visited := g.Reach("hotpathprop", []*FuncNode{g.NodeByName("fixture.A")},
		func(from *FuncNode, e *CallEdge, reason string) {
			prunedTargets = append(prunedTargets, from.Name+" → "+e.Target()+" ("+reason+")")
		})
	if _, ok := visited[g.NodeByName("fixture.B")]; ok {
		t.Error("pruned edge still entered the closure")
	}
	if len(prunedTargets) != 1 || !strings.Contains(prunedTargets[0], "fixture.A → fixture.B") {
		t.Errorf("pruned callback saw %v, want one fixture.A → fixture.B entry", prunedTargets)
	}
	// The directive names hotpathprop only: detreach's closure keeps
	// descending through the edge.
	other := g.Reach("detreach", []*FuncNode{g.NodeByName("fixture.A")}, nil)
	if _, ok := other[g.NodeByName("fixture.B")]; !ok {
		t.Error("a hotpathprop directive pruned the detreach closure")
	}
}

// TestUnknownCallCount: the conservatism trend metric counts dynamic
// edges.
func TestUnknownCallCount(t *testing.T) {
	g := buildFixtureGraph(t, fixtureSource{
		"mpgraph/internal/core/fixture", "internal/core/fixture/count.go", `package fixture
type I interface{ M() }
func A(i I, f func()) { i.M(); f(); B() }
func B() {}
`,
	})
	if g.UnknownCalls != 2 {
		t.Errorf("UnknownCalls = %d, want 2", g.UnknownCalls)
	}
	if got := g.EdgeCount(EdgeStatic); got != 1 {
		t.Errorf("EdgeCount(static) = %d, want 1", got)
	}
}
