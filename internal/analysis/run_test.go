package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInjectedViolationGates demonstrates the CI gate end to end: a
// module that sneaks a determinism violation into a deterministic
// package produces outstanding diagnostics, which is exactly the
// condition under which mpg-lint exits 1.
func TestInjectedViolationGates(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module mpgraph\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "core", "bad.go"), `
package core

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)
	res, err := Run(dir, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Outstanding()
	if len(out) != 1 {
		t.Fatalf("got %d outstanding diagnostics, want 1:\n%s", len(out), formatDiags(out))
	}
	if out[0].Analyzer != "nondet" || out[0].File != "internal/core/bad.go" {
		t.Errorf("unexpected diagnostic: %+v", out[0])
	}
}

// TestInjectedInterprocViolationsGate is the CI gate for the
// call-graph analyzers: a module that hides an allocation behind a
// call from a hot-path root, reads the wall clock deep under a replay
// kernel, and copies a mutex in the parallel package must produce one
// outstanding finding per analyzer.
func TestInjectedInterprocViolationsGate(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module mpgraph\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "core", "replay.go"), `
package core

import "time"

//mpg:hotpath
func ReplayCompiled() []float64 { return expand(4) }

func expand(n int) []float64 { return grow(n) }

func grow(n int) []float64 {
	observeDeadline()
	return make([]float64, n)
}

func observeDeadline() { _ = time.Now() }
`)
	writeFile(t, filepath.Join(dir, "internal", "parallel", "pool.go"), `
package parallel

import "sync"

type workerPool struct {
	mu sync.Mutex
}

func (p workerPool) drain() {}
`)
	res, err := Run(dir, Config{Analyzers: []*Analyzer{
		HotPathPropAnalyzer, DetReachAnalyzer, ConcDisciplineAnalyzer,
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byAnalyzer := map[string][]string{}
	for _, d := range res.Outstanding() {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d.Message)
	}
	wantContains := map[string]string{
		"hotpathprop":    "core.ReplayCompiled → core.expand → core.grow: make allocates",
		"detreach":       "core.ReplayCompiled → core.expand → core.grow → core.observeDeadline: time.Now on a replay-reachable path",
		"concdiscipline": "method drain copies its receiver workerPool, which contains sync.Mutex (field mu); use a pointer receiver",
	}
	for analyzer, want := range wantContains {
		found := false
		for _, msg := range byAnalyzer[analyzer] {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no outstanding finding containing %q; got %q", analyzer, want, byAnalyzer[analyzer])
		}
	}
}

// TestRepositoryClean is the acceptance criterion: the full suite over
// the real module with the committed (empty) baseline reports nothing.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	bl, err := LoadBaseline(filepath.Join(l.Root, "lint.baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(bl.Entries) != 0 {
		t.Errorf("committed baseline has %d entries; the suite is supposed to be clean without debt", len(bl.Entries))
	}
	res, err := Run(".", Config{Baseline: bl})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out := res.Outstanding(); len(out) != 0 {
		t.Errorf("repository is not lint-clean:\n%s", formatDiags(out))
	}
}

// TestDirectiveValidation: an ignore directive must name a known
// analyzer and carry a reason; a bare or misspelled directive is
// itself a gating finding and cannot suppress anything.
func TestDirectiveValidation(t *testing.T) {
	res := runFixture(t, FloateqAnalyzer, nondetScope, "internal/core/fixture/dir.go", `
package fixture

func Bad(a, b float64) (bool, bool, bool) {
	//mpg:lint-ignore floateqq epsilon free by design
	x := a == b
	//mpg:lint-ignore floateq
	y := a != b
	//mpg:lint-ignore
	z := a >= b
	return x, y, z
}
`)
	wantOutstanding(t, res,
		"names unknown analyzer \"floateqq\"",
		"exact floating-point comparison (==)",
		"carries no reason",
		"exact floating-point comparison (!=)",
		"names no analyzer",
		"exact floating-point comparison (>=)",
	)
}

// TestSuppressionScope: a trailing directive covers only its own line;
// an unrelated analyzer name suppresses nothing.
func TestSuppressionScope(t *testing.T) {
	res := runFixture(t, FloateqAnalyzer, nondetScope, "internal/core/fixture/scope.go", `
package fixture

func Mixed(a, b float64) (bool, bool) {
	x := a == b //mpg:lint-ignore nondet wrong analyzer: must not absorb the floateq finding
	y := a == b //mpg:lint-ignore floateq demonstration fixture
	return x, y
}
`)
	wantOutstanding(t, res, "exact floating-point comparison (==)")
	wantSuppressed(t, res, 1)
}

func TestBaselineAbsorbsByCount(t *testing.T) {
	res := runFixture(t, FloateqAnalyzer, nondetScope, "internal/core/fixture/base.go", `
package fixture

func Twice(a, b float64) (bool, bool) {
	return a == b, a == b
}
`)
	if got := len(res.Outstanding()); got != 2 {
		t.Fatalf("precondition: want 2 outstanding, got %d", got)
	}
	// A baseline with count 1 absorbs exactly one of the two identical
	// findings — baselines never hide more than they record.
	bl := &Baseline{Entries: []BaselineEntry{{
		Analyzer: "floateq",
		File:     res.Diagnostics[0].File,
		Message:  res.Diagnostics[0].Message,
		Count:    1,
	}}}
	bl.absorb(res.Diagnostics)
	var baselined, outstanding int
	for _, d := range res.Diagnostics {
		if d.Baselined {
			baselined++
		} else if !d.Suppressed {
			outstanding++
		}
	}
	if baselined != 1 || outstanding != 1 {
		t.Errorf("got %d baselined / %d outstanding, want 1 / 1", baselined, outstanding)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := &Baseline{Entries: []BaselineEntry{
		{Analyzer: "nondet", File: "internal/core/x.go", Message: "m", Count: 2},
	}}
	if err := b.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(got.Entries) != 1 || got.Entries[0] != b.Entries[0] {
		t.Errorf("round trip mismatch: %+v", got.Entries)
	}
	missing, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("LoadBaseline(missing): %v", err)
	}
	if len(missing.Entries) != 0 {
		t.Errorf("missing baseline should be empty, got %+v", missing.Entries)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
