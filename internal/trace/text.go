package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Text codec: a line-oriented, human-readable trace representation for
// debugging, diffing, and hand-authoring test fixtures. The format
// round-trips exactly with the binary codec:
//
//	# mpgt-text 1
//	header rank=2 nranks=8 clockhz=2000000000
//	meta workload=tokenring
//	meta seed=42
//	send begin=200 end=350 peer=3 tag=42 bytes=8192
//	allreduce begin=1000 end=1200 bytes=8 comm=0 seq=2 size=8
//	...
//
// Fields with their zero/absent value are omitted on output and
// default on input; peer/root use world ranks.

const textMagic = "# mpgt-text 1"

// WriteText renders a header and records in the text format.
func WriteText(w io.Writer, h Header, recs []Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, textMagic)
	fmt.Fprintf(bw, "header rank=%d nranks=%d", h.Rank, h.NRanks)
	if h.ClockHz != 0 {
		fmt.Fprintf(bw, " clockhz=%d", h.ClockHz)
	}
	fmt.Fprintln(bw)
	keys := make([]string, 0, len(h.Meta))
	for k := range h.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.ContainsAny(k, " =\n") || strings.Contains(h.Meta[k], "\n") {
			return fmt.Errorf("trace: metadata key/value %q not representable in text format", k)
		}
		fmt.Fprintf(bw, "meta %s=%s\n", k, h.Meta[k])
	}
	var prevEnd int64
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			return err
		}
		if i > 0 && r.Begin < prevEnd {
			return fmt.Errorf("trace: record %d: non-monotone timestamp: %s begin=%d before previous end=%d",
				i, r.Kind, r.Begin, prevEnd)
		}
		prevEnd = r.End
		fmt.Fprint(bw, r.Kind.String())
		fmt.Fprintf(bw, " begin=%d end=%d", r.Begin, r.End)
		if r.Peer != NoRank {
			fmt.Fprintf(bw, " peer=%d", r.Peer)
		}
		if r.Tag != 0 {
			fmt.Fprintf(bw, " tag=%d", r.Tag)
		}
		if r.Bytes != 0 {
			fmt.Fprintf(bw, " bytes=%d", r.Bytes)
		}
		if r.Req != 0 {
			fmt.Fprintf(bw, " req=%d", r.Req)
		}
		if r.Comm != 0 {
			fmt.Fprintf(bw, " comm=%d", r.Comm)
		}
		if r.Seq != 0 {
			fmt.Fprintf(bw, " seq=%d", r.Seq)
		}
		if r.Root != NoRank {
			fmt.Fprintf(bw, " root=%d", r.Root)
		}
		if r.CommSize != 0 {
			fmt.Fprintf(bw, " size=%d", r.CommSize)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// kindByName maps text names back to kinds.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, int(kindCount))
	for k := Kind(1); k < kindCount; k++ {
		m[k.String()] = k
	}
	return m
}()

// maxTextLine bounds a single line of the text format. Record lines
// are tiny, but meta values are free-form and tool-generated traces
// embed provenance blobs (command lines, config dumps) that have
// tripped lower caps; 64 MiB keeps the reader permissive while still
// refusing pathological unbounded input.
const maxTextLine = 64 << 20

// ReadText parses the text format into a header and records.
func ReadText(r io.Reader) (Header, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTextLine)
	var h Header
	var recs []Record
	sawMagic, sawHeader := false, false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !sawMagic {
			if line != textMagic {
				return h, nil, fmt.Errorf("trace: line 1: not a text trace (want %q)", textMagic)
			}
			sawMagic = true
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "header":
			kv, err := parseKV(fields[1:], lineNo)
			if err != nil {
				return h, nil, err
			}
			h.Rank = int(kv.get("rank", 0))
			h.NRanks = int(kv.get("nranks", 0))
			h.ClockHz = kv.get("clockhz", 0)
			if err := h.Validate(); err != nil {
				return h, nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			sawHeader = true
		case "meta":
			rest := strings.TrimSpace(strings.TrimPrefix(line, "meta"))
			k, v, ok := strings.Cut(rest, "=")
			if !ok {
				return h, nil, fmt.Errorf("trace: line %d: malformed meta line", lineNo)
			}
			if h.Meta == nil {
				h.Meta = map[string]string{}
			}
			h.Meta[k] = v
		default:
			kind, ok := kindByName[fields[0]]
			if !ok {
				return h, nil, fmt.Errorf("trace: line %d: unknown event kind %q", lineNo, fields[0])
			}
			kv, err := parseKV(fields[1:], lineNo)
			if err != nil {
				return h, nil, err
			}
			rec := Record{
				Kind:     kind,
				Begin:    kv.get("begin", 0),
				End:      kv.get("end", 0),
				Peer:     int32(kv.get("peer", int64(NoRank))),
				Tag:      int32(kv.get("tag", 0)),
				Bytes:    kv.get("bytes", 0),
				Req:      uint64(kv.get("req", 0)),
				Comm:     int32(kv.get("comm", 0)),
				Seq:      kv.get("seq", 0),
				Root:     int32(kv.get("root", int64(NoRank))),
				CommSize: int32(kv.get("size", 0)),
			}
			if err := rec.Validate(); err != nil {
				return h, nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			// A rank's events are a serial history: each must begin at or
			// after the previous one ended. Reject rather than normalize —
			// silently reordering would mask tracer bugs.
			if n := len(recs); n > 0 && rec.Begin < recs[n-1].End {
				return h, nil, fmt.Errorf("trace: line %d: non-monotone timestamp: %s begin=%d before previous end=%d",
					lineNo, rec.Kind, rec.Begin, recs[n-1].End)
			}
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return h, nil, err
	}
	if !sawMagic {
		return h, nil, errors.New("trace: empty input is not a text trace")
	}
	if !sawHeader {
		return h, nil, errors.New("trace: text trace missing header line")
	}
	return h, recs, nil
}

type kvmap map[string]int64

func (m kvmap) get(key string, def int64) int64 {
	if v, ok := m[key]; ok {
		return v
	}
	return def
}

func parseKV(fields []string, lineNo int) (kvmap, error) {
	m := kvmap{}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("trace: line %d: field %q is not key=value", lineNo, f)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %s=%q is not an integer", lineNo, k, v)
		}
		m[k] = n
	}
	return m, nil
}

// DumpText converts one rank's reader to the text format (draining the
// reader).
func DumpText(w io.Writer, r Reader) error {
	m, err := ReadAll(r)
	if err != nil {
		return err
	}
	return WriteText(w, m.Hdr, m.Records)
}
