// Package trace defines the event-trace model of the analyzer: the
// records a PMPI-style tracing layer emits for each rank, a compact
// binary codec, a buffered writer that mirrors the paper's
// flush-on-full memory-resident buffer (Section 4), and a streaming
// reader that lets the graph builder process arbitrarily large traces
// in bounded memory (Sections 4.2, 6).
//
// Timestamps are expressed in cycles on the *local* clock of the rank
// that recorded them. Local clocks may disagree across ranks (offset
// and drift); nothing in this package, and nothing downstream, ever
// compares timestamps from different ranks (Section 4.1 of the paper).
package trace

import "fmt"

// Kind identifies the message-passing primitive (or pseudo-event) a
// record describes. The set covers the MPI-1 send/receive subset the
// paper treats (Section 3) plus the collectives of Section 3.2 and a
// Marker pseudo-event for region annotation.
type Kind uint8

// Event kinds. The numeric values are part of the on-disk format;
// append only.
const (
	// KindInvalid is the zero Kind and never appears in valid traces.
	KindInvalid Kind = iota
	// KindInit marks MPI_Init: the first event on every rank.
	KindInit
	// KindFinalize marks MPI_Finalize: the last event on every rank.
	KindFinalize
	// KindSend is a blocking point-to-point send (MPI_Send).
	KindSend
	// KindRecv is a blocking point-to-point receive (MPI_Recv).
	KindRecv
	// KindIsend is a nonblocking send initiation (MPI_Isend).
	KindIsend
	// KindIrecv is a nonblocking receive initiation (MPI_Irecv).
	KindIrecv
	// KindWait is a blocking completion of one request (MPI_Wait).
	KindWait
	// KindWaitall is one request completion recorded on behalf of an
	// MPI_Waitall; the tracing layer emits one KindWaitall record per
	// completed request. The first record carries the call's interval
	// and the rest are zero-duration at the completion time, so that
	// per-rank records never overlap.
	KindWaitall
	// KindBarrier is MPI_Barrier.
	KindBarrier
	// KindBcast is MPI_Bcast (root field holds the root rank).
	KindBcast
	// KindReduce is MPI_Reduce (root field holds the root rank).
	KindReduce
	// KindAllreduce is MPI_Allreduce.
	KindAllreduce
	// KindGather is MPI_Gather (root field holds the root rank).
	KindGather
	// KindAllgather is MPI_Allgather.
	KindAllgather
	// KindScatter is MPI_Scatter (root field holds the root rank).
	KindScatter
	// KindAlltoall is MPI_Alltoall.
	KindAlltoall
	// KindCommSplit is MPI_Comm_split/dup: communicator creation. It
	// synchronizes the members of the *parent* communicator (whose id
	// is in Comm) and is modeled like a barrier on that group.
	KindCommSplit
	// KindMarker is a zero-duration region annotation emitted by the
	// application (not an MPI primitive); Tag carries the region id.
	KindMarker
	// KindScan is MPI_Scan: an inclusive prefix reduction — rank i's
	// result depends on ranks 0..i only, so perturbations propagate
	// forward along the rank order rather than to everyone.
	KindScan

	kindCount // number of kinds; keep last
)

var kindNames = [...]string{
	KindInvalid:   "invalid",
	KindInit:      "init",
	KindFinalize:  "finalize",
	KindSend:      "send",
	KindRecv:      "recv",
	KindIsend:     "isend",
	KindIrecv:     "irecv",
	KindWait:      "wait",
	KindWaitall:   "waitall",
	KindBarrier:   "barrier",
	KindBcast:     "bcast",
	KindReduce:    "reduce",
	KindAllreduce: "allreduce",
	KindGather:    "gather",
	KindAllgather: "allgather",
	KindScatter:   "scatter",
	KindAlltoall:  "alltoall",
	KindScan:      "scan",
	KindCommSplit: "commsplit",
	KindMarker:    "marker",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined kind other than KindInvalid.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindCount }

// IsPointToPoint reports whether the kind is a pairwise primitive
// (Section 3.1).
func (k Kind) IsPointToPoint() bool {
	switch k {
	case KindSend, KindRecv, KindIsend, KindIrecv:
		return true
	}
	return false
}

// IsCollective reports whether the kind is a collective primitive
// (Section 3.2).
func (k Kind) IsCollective() bool {
	switch k {
	case KindBarrier, KindBcast, KindReduce, KindAllreduce,
		KindGather, KindAllgather, KindScatter, KindAlltoall,
		KindScan, KindCommSplit:
		return true
	}
	return false
}

// IsNonblocking reports whether the primitive returns immediately
// (Section 3.1.3).
func (k Kind) IsNonblocking() bool { return k == KindIsend || k == KindIrecv }

// IsCompletion reports whether the kind completes a previously posted
// nonblocking request.
func (k Kind) IsCompletion() bool { return k == KindWait || k == KindWaitall }

// IsRooted reports whether the collective has a distinguished root rank
// whose role matters for the graph model (Reduce/Bcast/Gather/Scatter).
//
//mpg:hotpath
func (k Kind) IsRooted() bool {
	switch k {
	case KindBcast, KindReduce, KindGather, KindScatter:
		return true
	}
	return false
}

// NoRank is the Peer/Root value used when the field does not apply.
const NoRank int32 = -1

// Record is one traced event on one rank: the local begin and end
// timestamps plus the metadata needed to match the event with its
// counterparts on other ranks (Section 4). A Record corresponds to the
// paper's pair of start/end subevents.
type Record struct {
	// Kind identifies the primitive.
	Kind Kind
	// Begin and End are local-clock timestamps (cycles) of entry to and
	// exit from the primitive. End >= Begin always.
	Begin, End int64
	// Peer is the remote rank for point-to-point events, else NoRank.
	Peer int32
	// Tag is the message tag for point-to-point events, the region id
	// for markers, and zero otherwise.
	Tag int32
	// Bytes is the message payload size for point-to-point events and
	// the per-rank contribution size for collectives.
	Bytes int64
	// Req is the nonblocking request id (per-rank, monotonically
	// increasing from 1) linking Isend/Irecv records to their Wait
	// records; zero for blocking events.
	Req uint64
	// Comm is the communicator id (0 = COMM_WORLD).
	Comm int32
	// Seq is the per-communicator collective sequence number used to
	// match collective events across ranks; zero for non-collectives.
	Seq int64
	// Root is the root rank for rooted collectives, else NoRank.
	// Peer and Root are always WORLD ranks: the tracing layer
	// translates communicator-relative ranks before recording, so the
	// graph builder never needs communicator membership tables. The
	// Comm id still scopes matching (tags may repeat across
	// communicators).
	Root int32
	// CommSize is the number of participants in the event's
	// communicator for collective events (the builder must know how
	// many counterpart records to expect); zero otherwise.
	CommSize int32
}

// Duration returns the event's traced duration in cycles.
func (r Record) Duration() int64 { return r.End - r.Begin }

// Validate checks the internal consistency of a single record (field
// applicability and ordering). It does not and cannot check cross-rank
// properties; the graph builder does that during matching.
func (r Record) Validate() error {
	if !r.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", uint8(r.Kind))
	}
	if r.End < r.Begin {
		return fmt.Errorf("trace: %s record with End %d < Begin %d", r.Kind, r.End, r.Begin)
	}
	if r.Kind.IsPointToPoint() {
		if r.Peer < 0 {
			return fmt.Errorf("trace: %s record without peer", r.Kind)
		}
		if r.Bytes < 0 {
			return fmt.Errorf("trace: %s record with negative size %d", r.Kind, r.Bytes)
		}
	}
	if r.Kind.IsNonblocking() && r.Req == 0 {
		return fmt.Errorf("trace: %s record without request id", r.Kind)
	}
	if r.Kind.IsCompletion() && r.Req == 0 {
		return fmt.Errorf("trace: %s record without request id", r.Kind)
	}
	if r.Kind.IsCollective() && r.Seq <= 0 {
		return fmt.Errorf("trace: %s record without collective sequence", r.Kind)
	}
	if r.Kind.IsCollective() && r.CommSize <= 0 {
		return fmt.Errorf("trace: %s record without communicator size", r.Kind)
	}
	if r.Kind.IsRooted() && r.Root < 0 {
		return fmt.Errorf("trace: %s record without root", r.Kind)
	}
	return nil
}

// String renders the record compactly for debugging and the text codec.
func (r Record) String() string {
	return fmt.Sprintf("%s [%d,%d] peer=%d tag=%d bytes=%d req=%d comm=%d seq=%d root=%d",
		r.Kind, r.Begin, r.End, r.Peer, r.Tag, r.Bytes, r.Req, r.Comm, r.Seq, r.Root)
}

// Header describes one rank's trace stream. It is written once at the
// start of the stream.
type Header struct {
	// Rank is the recording rank.
	Rank int
	// NRanks is the world size of the traced run.
	NRanks int
	// ClockHz is the nominal frequency of the local clock; informative
	// only (the analyzer works in cycles).
	ClockHz int64
	// Meta carries free-form key/value annotations (platform name,
	// workload parameters, ...). Keys and values must not contain
	// newlines.
	Meta map[string]string
}

// Validate checks the header fields.
func (h Header) Validate() error {
	if h.NRanks <= 0 {
		return fmt.Errorf("trace: header with non-positive world size %d", h.NRanks)
	}
	if h.Rank < 0 || h.Rank >= h.NRanks {
		return fmt.Errorf("trace: header rank %d outside [0,%d)", h.Rank, h.NRanks)
	}
	return nil
}
