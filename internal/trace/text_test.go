package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	hdr := Header{Rank: 2, NRanks: 8, ClockHz: 123,
		Meta: map[string]string{"workload": "tokenring", "seed": "42"}}
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteText(&buf, hdr, recs); err != nil {
		t.Fatal(err)
	}
	h2, r2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Rank != hdr.Rank || h2.NRanks != hdr.NRanks || h2.ClockHz != hdr.ClockHz {
		t.Fatalf("header mismatch: %+v", h2)
	}
	if !reflect.DeepEqual(h2.Meta, hdr.Meta) {
		t.Fatalf("meta mismatch: %v", h2.Meta)
	}
	if !reflect.DeepEqual(r2, recs) {
		for i := range recs {
			if i < len(r2) && !reflect.DeepEqual(r2[i], recs[i]) {
				t.Fatalf("record %d: got %+v want %+v", i, r2[i], recs[i])
			}
		}
		t.Fatalf("record count: got %d want %d", len(r2), len(recs))
	}
}

func TestTextOutputReadable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteText(&buf, Header{Rank: 0, NRanks: 2}, []Record{
		{Kind: KindSend, Begin: 10, End: 20, Peer: 1, Tag: 3, Bytes: 64, Root: NoRank},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"# mpgt-text 1", "header rank=0 nranks=2",
		"send begin=10 end=20 peer=1 tag=3 bytes=64"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	// Absent fields omitted.
	if strings.Contains(out, "root=") || strings.Contains(out, "req=") {
		t.Errorf("zero fields not omitted:\n%s", out)
	}
}

func TestTextHandAuthored(t *testing.T) {
	src := `# mpgt-text 1
header rank=0 nranks=1

meta note=hand-written
init begin=0 end=10
marker begin=50 end=50 tag=7
finalize begin=100 end=100
`
	h, recs, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.Meta["note"] != "hand-written" {
		t.Fatalf("meta = %v", h.Meta)
	}
	if len(recs) != 3 || recs[1].Kind != KindMarker || recs[1].Tag != 7 {
		t.Fatalf("records = %v", recs)
	}
	// Defaults applied: peer/root = NoRank.
	if recs[0].Peer != NoRank || recs[0].Root != NoRank {
		t.Fatalf("defaults wrong: %+v", recs[0])
	}
}

func TestTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no magic":     "header rank=0 nranks=1\n",
		"no header":    "# mpgt-text 1\ninit begin=0 end=1\n",
		"bad kind":     "# mpgt-text 1\nheader rank=0 nranks=1\nfrobnicate begin=0 end=1\n",
		"bad field":    "# mpgt-text 1\nheader rank=0 nranks=1\ninit begin end=1\n",
		"bad number":   "# mpgt-text 1\nheader rank=0 nranks=1\ninit begin=x end=1\n",
		"bad record":   "# mpgt-text 1\nheader rank=0 nranks=1\nsend begin=0 end=1\n",
		"bad header":   "# mpgt-text 1\nheader rank=5 nranks=1\n",
		"bad meta":     "# mpgt-text 1\nheader rank=0 nranks=1\nmeta keyonly\n",
		"invalid time": "# mpgt-text 1\nheader rank=0 nranks=1\ninit begin=10 end=5\n",
	}
	for name, src := range cases {
		if _, _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestTextLongLine pins the reader's line budget: a meta value well
// past bufio.Scanner's default (and past the 1 MiB cap the reader
// used to set) must survive a round trip rather than fail with
// bufio.ErrTooLong. Provenance blobs in tool-generated traces are the
// real-world source of such lines.
func TestTextLongLine(t *testing.T) {
	long := strings.Repeat("x", 3<<20)
	hdr := Header{Rank: 0, NRanks: 2, Meta: map[string]string{"provenance": long}}
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteText(&buf, hdr, recs); err != nil {
		t.Fatal(err)
	}
	h2, r2, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("long meta line rejected: %v", err)
	}
	if h2.Meta["provenance"] != long {
		t.Fatalf("long meta value truncated: got %d bytes, want %d",
			len(h2.Meta["provenance"]), len(long))
	}
	if !reflect.DeepEqual(r2, recs) {
		t.Fatal("records after the long line did not round-trip")
	}
}

func TestTextRejectsNonMonotone(t *testing.T) {
	// A rank's events form a serial history; an event beginning before
	// its predecessor ended is a tracer bug the codec must surface, not
	// normalize away.
	src := `# mpgt-text 1
header rank=0 nranks=2
send begin=100 end=200 peer=1 bytes=8
send begin=150 end=250 peer=1 bytes=8
`
	if _, _, err := ReadText(strings.NewReader(src)); err == nil {
		t.Fatal("non-monotone trace accepted")
	} else if !strings.Contains(err.Error(), "non-monotone") {
		t.Fatalf("wrong error: %v", err)
	}

	var buf bytes.Buffer
	err := WriteText(&buf, Header{Rank: 0, NRanks: 2}, []Record{
		{Kind: KindSend, Begin: 100, End: 200, Peer: 1, Bytes: 8, Root: NoRank},
		{Kind: KindSend, Begin: 150, End: 250, Peer: 1, Bytes: 8, Root: NoRank},
	})
	if err == nil {
		t.Fatal("writer emitted a non-monotone trace")
	}

	// begin == previous end is a legal back-to-back schedule.
	touching := `# mpgt-text 1
header rank=0 nranks=2
send begin=100 end=200 peer=1 bytes=8
send begin=200 end=250 peer=1 bytes=8
`
	if _, _, err := ReadText(strings.NewReader(touching)); err != nil {
		t.Fatalf("touching events rejected: %v", err)
	}
}

func TestTextRejectsUnrepresentableMeta(t *testing.T) {
	var buf bytes.Buffer
	err := WriteText(&buf, Header{Rank: 0, NRanks: 1,
		Meta: map[string]string{"bad key": "v"}}, nil)
	if err == nil {
		t.Fatal("space in meta key accepted")
	}
}

func TestDumpText(t *testing.T) {
	m := &MemTrace{
		Hdr: Header{Rank: 0, NRanks: 1},
		Records: []Record{
			{Kind: KindInit, Begin: 0, End: 1, Peer: NoRank, Root: NoRank},
		},
	}
	var buf bytes.Buffer
	if err := DumpText(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "init begin=0 end=1") {
		t.Fatalf("dump = %q", buf.String())
	}
}

func TestTextBinaryEquivalence(t *testing.T) {
	// A trace written via text, read back, and encoded via the binary
	// codec must survive a binary round trip identically.
	hdr := Header{Rank: 1, NRanks: 4}
	recs := sampleRecords()
	var text bytes.Buffer
	if err := WriteText(&text, hdr, recs); err != nil {
		t.Fatal(err)
	}
	h2, r2, err := ReadText(&text)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	enc, err := NewEncoder(&bin, h2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range r2 {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: %+v vs %+v", i, got, want)
		}
	}
}
