package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Binary stream format (version 1):
//
//	magic   "MPGT"          4 bytes
//	version uvarint         currently 1
//	rank    uvarint
//	nranks  uvarint
//	clockhz uvarint
//	nmeta   uvarint
//	nmeta × (key uvarint-len bytes, value uvarint-len bytes), sorted by key
//	records: each record is
//	    kind   uvarint (non-zero)
//	    dbegin varint  (begin delta vs previous record's begin; first is absolute)
//	    dur    uvarint (end - begin)
//	    flags  uvarint bitset of optional fields present
//	    ... optional fields in flag order, each varint/uvarint
//	terminator: kind value 0
//
// Delta-encoding the begin timestamps keeps long traces compact (most
// inter-event gaps are small relative to absolute cycle counts).

const (
	magic         = "MPGT"
	formatVersion = 1
)

// Flag bits for optional record fields.
const (
	flagPeer = 1 << iota
	flagTag
	flagBytes
	flagReq
	flagComm
	flagSeq
	flagRoot
	flagCommSize
)

// ErrBadMagic is returned when a stream does not begin with the trace
// magic bytes.
var ErrBadMagic = errors.New("trace: bad magic (not a trace stream)")

// Encoder writes a trace stream: one header followed by records in
// recording order. Close writes the stream terminator.
type Encoder struct {
	w         *bufio.Writer
	prevBegin int64
	started   bool
	closed    bool
	buf       [binary.MaxVarintLen64]byte
}

// NewEncoder creates an encoder and immediately writes the header.
func NewEncoder(w io.Writer, h Header) (*Encoder, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	e := &Encoder{w: bufio.NewWriter(w)}
	if _, err := e.w.WriteString(magic); err != nil {
		return nil, err
	}
	e.putUvarint(formatVersion)
	e.putUvarint(uint64(h.Rank))
	e.putUvarint(uint64(h.NRanks))
	e.putUvarint(uint64(h.ClockHz))
	keys := make([]string, 0, len(h.Meta))
	for k := range h.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.putUvarint(uint64(len(keys)))
	for _, k := range keys {
		e.putString(k)
		e.putString(h.Meta[k])
	}
	e.started = true
	return e, nil
}

func (e *Encoder) putUvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.w.Write(e.buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func (e *Encoder) putVarint(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.w.Write(e.buf[:n]) //nolint:errcheck
}

func (e *Encoder) putString(s string) {
	e.putUvarint(uint64(len(s)))
	e.w.WriteString(s) //nolint:errcheck
}

// Encode appends one record to the stream.
func (e *Encoder) Encode(r Record) error {
	if e.closed {
		return errors.New("trace: encode on closed encoder")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	e.putUvarint(uint64(r.Kind))
	e.putVarint(r.Begin - e.prevBegin)
	e.prevBegin = r.Begin
	e.putUvarint(uint64(r.Duration()))
	var flags uint64
	if r.Peer != NoRank && r.Peer != 0 || r.Peer == 0 && r.Kind.IsPointToPoint() {
		flags |= flagPeer
	}
	if r.Tag != 0 {
		flags |= flagTag
	}
	if r.Bytes != 0 {
		flags |= flagBytes
	}
	if r.Req != 0 {
		flags |= flagReq
	}
	if r.Comm != 0 {
		flags |= flagComm
	}
	if r.Seq != 0 {
		flags |= flagSeq
	}
	if r.Root != NoRank && (r.Root != 0 || r.Kind.IsRooted()) {
		flags |= flagRoot
	}
	if r.CommSize != 0 {
		flags |= flagCommSize
	}
	e.putUvarint(flags)
	if flags&flagPeer != 0 {
		e.putVarint(int64(r.Peer))
	}
	if flags&flagTag != 0 {
		e.putVarint(int64(r.Tag))
	}
	if flags&flagBytes != 0 {
		e.putUvarint(uint64(r.Bytes))
	}
	if flags&flagReq != 0 {
		e.putUvarint(r.Req)
	}
	if flags&flagComm != 0 {
		e.putVarint(int64(r.Comm))
	}
	if flags&flagSeq != 0 {
		e.putUvarint(uint64(r.Seq))
	}
	if flags&flagRoot != 0 {
		e.putVarint(int64(r.Root))
	}
	if flags&flagCommSize != 0 {
		e.putUvarint(uint64(r.CommSize))
	}
	return nil
}

// Close writes the terminator and flushes buffered output. It does not
// close the underlying writer.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	e.putUvarint(0) // terminator
	return e.w.Flush()
}

// Decoder reads a trace stream produced by Encoder.
type Decoder struct {
	r      *bufio.Reader
	header Header
	done   bool
	prev   int64
}

// NewDecoder reads and validates the stream header.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r)}
	var m [4]byte
	if _, err := io.ReadFull(d.r, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, ErrBadMagic
	}
	ver, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", ver)
	}
	rank, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, err
	}
	nranks, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, err
	}
	clockhz, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, err
	}
	nmeta, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, err
	}
	if nmeta > 1<<20 {
		return nil, fmt.Errorf("trace: implausible metadata count %d", nmeta)
	}
	var meta map[string]string
	if nmeta > 0 {
		meta = make(map[string]string, nmeta)
		for i := uint64(0); i < nmeta; i++ {
			k, err := d.readString()
			if err != nil {
				return nil, err
			}
			v, err := d.readString()
			if err != nil {
				return nil, err
			}
			meta[k] = v
		}
	}
	d.header = Header{Rank: int(rank), NRanks: int(nranks), ClockHz: int64(clockhz), Meta: meta}
	if err := d.header.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Decoder) readString() (string, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	var sb strings.Builder
	sb.Grow(int(n))
	if _, err := io.CopyN(&sb, d.r, int64(n)); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Header returns the stream header read by NewDecoder.
func (d *Decoder) Header() Header { return d.header }

// Decode reads the next record. It returns io.EOF after the stream
// terminator (a clean end) and a wrapped io.ErrUnexpectedEOF if the
// stream is truncated mid-record.
func (d *Decoder) Decode() (Record, error) {
	if d.done {
		return Record{}, io.EOF
	}
	kind, err := binary.ReadUvarint(d.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, fmt.Errorf("trace: truncated stream (missing terminator): %w", io.ErrUnexpectedEOF)
		}
		return Record{}, err
	}
	if kind == 0 {
		d.done = true
		return Record{}, io.EOF
	}
	var r Record
	r.Kind = Kind(kind)
	dbegin, err := binary.ReadVarint(d.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	r.Begin = d.prev + dbegin
	d.prev = r.Begin
	dur, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	r.End = r.Begin + int64(dur)
	flags, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	r.Peer, r.Root = NoRank, NoRank
	if flags&flagPeer != 0 {
		v, err := binary.ReadVarint(d.r)
		if err != nil {
			return Record{}, err
		}
		r.Peer = int32(v)
	}
	if flags&flagTag != 0 {
		v, err := binary.ReadVarint(d.r)
		if err != nil {
			return Record{}, err
		}
		r.Tag = int32(v)
	}
	if flags&flagBytes != 0 {
		v, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Record{}, err
		}
		r.Bytes = int64(v)
	}
	if flags&flagReq != 0 {
		v, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Record{}, err
		}
		r.Req = v
	}
	if flags&flagComm != 0 {
		v, err := binary.ReadVarint(d.r)
		if err != nil {
			return Record{}, err
		}
		r.Comm = int32(v)
	}
	if flags&flagSeq != 0 {
		v, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Record{}, err
		}
		r.Seq = int64(v)
	}
	if flags&flagRoot != 0 {
		v, err := binary.ReadVarint(d.r)
		if err != nil {
			return Record{}, err
		}
		r.Root = int32(v)
	}
	if flags&flagCommSize != 0 {
		v, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Record{}, err
		}
		r.CommSize = int32(v)
	}
	if err := r.Validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}
