package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"mpgraph/internal/dist"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindInit, Begin: 0, End: 100, Peer: NoRank, Root: NoRank},
		{Kind: KindSend, Begin: 200, End: 350, Peer: 3, Tag: 42, Bytes: 8192, Root: NoRank},
		{Kind: KindIsend, Begin: 400, End: 410, Peer: 1, Tag: 7, Bytes: 64, Req: 1, Root: NoRank},
		{Kind: KindIrecv, Begin: 420, End: 425, Peer: 1, Tag: 7, Bytes: 64, Req: 2, Root: NoRank},
		{Kind: KindWait, Begin: 500, End: 620, Peer: NoRank, Req: 1, Root: NoRank},
		{Kind: KindWaitall, Begin: 620, End: 700, Peer: NoRank, Req: 2, Root: NoRank},
		{Kind: KindBarrier, Begin: 800, End: 900, Peer: NoRank, Seq: 1, Comm: 0, Root: NoRank, CommSize: 8},
		{Kind: KindAllreduce, Begin: 1000, End: 1200, Peer: NoRank, Seq: 2, Bytes: 8, Root: NoRank, CommSize: 8},
		{Kind: KindReduce, Begin: 1300, End: 1400, Peer: NoRank, Seq: 3, Bytes: 8, Root: 0, CommSize: 8},
		{Kind: KindBcast, Begin: 1500, End: 1600, Peer: NoRank, Seq: 4, Bytes: 1024, Root: 2, Comm: 1, CommSize: 4},
		{Kind: KindMarker, Begin: 1700, End: 1700, Peer: NoRank, Tag: 5, Root: NoRank},
		{Kind: KindFinalize, Begin: 1800, End: 1850, Peer: NoRank, Root: NoRank},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	hdr := Header{
		Rank: 2, NRanks: 8, ClockHz: 2_000_000_000,
		Meta: map[string]string{"workload": "tokenring", "seed": "42"},
	}
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("encode %v: %v", r, err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := dec.Header()
	if got.Rank != hdr.Rank || got.NRanks != hdr.NRanks || got.ClockHz != hdr.ClockHz {
		t.Fatalf("header mismatch: %+v vs %+v", got, hdr)
	}
	if !reflect.DeepEqual(got.Meta, hdr.Meta) {
		t.Fatalf("meta mismatch: %v vs %v", got.Meta, hdr.Meta)
	}
	for i, want := range recs {
		r, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("record %d: got %+v, want %+v", i, r, want)
		}
	}
	if _, err := dec.Decode(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
	// Decoding again keeps returning EOF.
	if _, err := dec.Decode(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected repeated EOF, got %v", err)
	}
}

func TestCodecEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, Header{Rank: 0, NRanks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF on empty stream, got %v", err)
	}
}

func TestDecoderRejectsBadMagic(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("NOPE....."))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestDecoderRejectsShortInput(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("MP"))); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestDecoderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, Header{Rank: 0, NRanks: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop off the tail (terminator plus part of the last record).
	data := buf.Bytes()[:buf.Len()-4]
	dec, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		_, err := dec.Decode()
		if err != nil {
			lastErr = err
			break
		}
	}
	if errors.Is(lastErr, io.EOF) && !errors.Is(lastErr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream ended with clean EOF")
	}
}

func TestEncoderRejectsInvalidRecord(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, Header{Rank: 0, NRanks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Record{Kind: KindSend, Peer: NoRank, Root: NoRank}); err == nil {
		t.Fatal("invalid record encoded without error")
	}
}

func TestEncoderRejectsBadHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewEncoder(&buf, Header{Rank: 5, NRanks: 2}); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestEncodeAfterCloseFails(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, Header{Rank: 0, NRanks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(sampleRecords()[0]); err == nil {
		t.Fatal("encode after close succeeded")
	}
}

// TestCodecQuickRoundTrip round-trips randomized-but-valid record
// sequences through the codec.
func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := dist.NewRNG(seed)
		count := int(n%50) + 1
		recs := make([]Record, 0, count)
		clock := int64(0)
		var req uint64
		var seq int64
		for i := 0; i < count; i++ {
			clock += int64(r.Intn(1000))
			dur := int64(r.Intn(500))
			var rec Record
			switch r.Intn(5) {
			case 0:
				rec = Record{Kind: KindSend, Peer: int32(r.Intn(16)), Tag: int32(r.Intn(100)),
					Bytes: int64(r.Intn(1 << 20)), Root: NoRank}
			case 1:
				rec = Record{Kind: KindRecv, Peer: int32(r.Intn(16)), Tag: int32(r.Intn(100)),
					Bytes: int64(r.Intn(1 << 20)), Root: NoRank}
			case 2:
				req++
				rec = Record{Kind: KindIsend, Peer: int32(r.Intn(16)), Req: req, Root: NoRank}
			case 3:
				seq++
				rec = Record{Kind: KindAllreduce, Seq: seq, Bytes: 8, Peer: NoRank, Root: NoRank, CommSize: 4}
			case 4:
				rec = Record{Kind: KindMarker, Tag: int32(r.Intn(10)), Peer: NoRank, Root: NoRank}
				dur = 0
			}
			rec.Begin = clock
			rec.End = clock + dur
			clock = rec.End
			recs = append(recs, rec)
		}

		var buf bytes.Buffer
		enc, err := NewEncoder(&buf, Header{Rank: 0, NRanks: 1})
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return false
			}
		}
		if err := enc.Close(); err != nil {
			return false
		}
		dec, err := NewDecoder(&buf)
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, err := dec.Decode()
			if err != nil || !reflect.DeepEqual(got, want) {
				return false
			}
		}
		_, err = dec.Decode()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecCompactness(t *testing.T) {
	// Delta encoding should keep the per-record cost small for typical
	// traces (monotone timestamps with modest gaps).
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, Header{Rank: 0, NRanks: 1})
	if err != nil {
		t.Fatal(err)
	}
	clock := int64(1 << 40) // large absolute times
	const n = 10000
	for i := 0; i < n; i++ {
		rec := Record{Kind: KindSend, Begin: clock, End: clock + 100, Peer: 1, Bytes: 64, Root: NoRank}
		clock += 250
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / n
	if perRecord > 12 {
		t.Fatalf("codec uses %.1f bytes/record, want <= 12", perRecord)
	}
}
