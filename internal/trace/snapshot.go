package trace

import "sync"

// Snapshot is an immutable in-memory copy of a traced run from which
// any number of independent Sets can be built. It exists for parallel
// replay: a Set is single-use (its readers carry a position), so
// concurrent Analyze calls must each get their own readers — but the
// records themselves never change, so they can be shared. A Snapshot
// drains the trace once and then hands out lightweight reader sets
// over the shared record slices.
//
// Acquire draws the per-replay reader scratch from an internal
// sync.Pool, so a bounded worker pool replaying thousands of tasks
// keeps the reader overhead at O(workers), not O(tasks).
type Snapshot struct {
	traces []*MemTrace // canonical records; never mutated after NewSnapshot
	pool   sync.Pool   // of []*MemTrace wrapper sets
}

// NewSnapshot drains the Set into a Snapshot. Like any other consumer
// of a Set, it exhausts the readers: the Set cannot be analyzed
// afterwards (use the Snapshot instead).
func NewSnapshot(s *Set) (*Snapshot, error) {
	traces := make([]*MemTrace, s.NRanks())
	for r := 0; r < s.NRanks(); r++ {
		m, err := ReadAll(s.Rank(r))
		if err != nil {
			return nil, err
		}
		m.Hdr = s.Rank(r).Header()
		traces[r] = m
	}
	return &Snapshot{traces: traces}, nil
}

// NRanks returns the world size of the snapshotted run.
func (s *Snapshot) NRanks() int { return len(s.traces) }

// Events returns the total record count across ranks.
func (s *Snapshot) Events() int64 {
	var n int64
	for _, m := range s.traces {
		n += int64(len(m.Records))
	}
	return n
}

// Acquire returns a fresh single-use Set over the snapshot's records
// plus a release function that recycles the reader scratch. Call
// release after the Set has been consumed (e.g. after core.Analyze
// returns); the Set must not be used afterwards. Any number of
// acquired Sets may be consumed concurrently.
//
//mpg:hotpath
func (s *Snapshot) Acquire() (*Set, func()) {
	wrappers, _ := s.pool.Get().([]*MemTrace) //mpg:lint-ignore hotpathprop sync.Pool is stubbed by the analysis loader; Get itself does not allocate
	if wrappers == nil {
		//mpg:lint-ignore hotpathalloc cold pool-miss path; wrapper sets are recycled across acquisitions
		wrappers = make([]*MemTrace, len(s.traces))
		for i := range wrappers {
			//mpg:lint-ignore hotpathalloc cold pool-miss path; wrapper sets are recycled across acquisitions
			wrappers[i] = &MemTrace{}
		}
	}
	//mpg:lint-ignore hotpathalloc per-acquire readers slice is part of the documented budget (AllocsPerRun-guarded <= 6)
	readers := make([]Reader, len(wrappers))
	for i, w := range wrappers {
		w.Hdr = s.traces[i].Hdr
		w.Records = s.traces[i].Records
		w.pos = 0
		readers[i] = w
	}
	// The wrappers are by construction a valid rank-complete set;
	// bypass NewSet's validation (it cannot fail here).
	//mpg:lint-ignore hotpathalloc the returned Set is part of the documented budget (AllocsPerRun-guarded <= 6)
	set := &Set{readers: readers}
	//mpg:lint-ignore hotpathalloc the release closure escapes by design and is counted in the guarded budget
	release := func() { s.pool.Put(wrappers) } //mpg:lint-ignore hotpathprop sync.Pool is stubbed by the analysis loader; Put does not allocate
	return set, release
}
