package trace

import (
	"errors"
	"io"
	"sync"
	"testing"
)

func snapshotFixture(t *testing.T) *Snapshot {
	t.Helper()
	mk := func(rank int) *MemTrace {
		return &MemTrace{
			Hdr: Header{Rank: rank, NRanks: 2},
			Records: []Record{
				{Kind: KindInit, Begin: 0, End: 10, Peer: NoRank, Root: NoRank},
				{Kind: KindFinalize, Begin: 20, End: 20, Peer: NoRank, Root: NoRank},
			},
		}
	}
	set, err := SetFromMem([]*MemTrace{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(set)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func drain(t *testing.T, set *Set) int {
	t.Helper()
	n := 0
	for r := 0; r < set.NRanks(); r++ {
		for {
			_, err := set.Rank(r).Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	return n
}

func TestSnapshotRepeatedAcquire(t *testing.T) {
	snap := snapshotFixture(t)
	if snap.NRanks() != 2 || snap.Events() != 4 {
		t.Fatalf("snapshot shape: ranks=%d events=%d", snap.NRanks(), snap.Events())
	}
	for i := 0; i < 5; i++ {
		set, release := snap.Acquire()
		if got := drain(t, set); got != 4 {
			t.Fatalf("acquire %d: drained %d records", i, got)
		}
		release()
	}
}

// TestSnapshotConcurrentAcquire drains many acquired sets in parallel
// under -race: the shared records must never be mutated and each set's
// read position must be private.
func TestSnapshotConcurrentAcquire(t *testing.T) {
	snap := snapshotFixture(t)
	var wg sync.WaitGroup
	errc := make(chan string, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			set, release := snap.Acquire()
			defer release()
			n := 0
			for r := 0; r < set.NRanks(); r++ {
				for {
					_, err := set.Rank(r).Next()
					if errors.Is(err, io.EOF) {
						break
					}
					if err != nil {
						errc <- err.Error()
						return
					}
					n++
				}
			}
			if n != 4 {
				errc <- "short read"
			}
		}()
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestSnapshotWithoutRelease still works (fresh wrappers are built when
// the pool is empty) — release is an optimization, not a requirement.
func TestSnapshotWithoutRelease(t *testing.T) {
	snap := snapshotFixture(t)
	a, _ := snap.Acquire()
	b, _ := snap.Acquire()
	if drain(t, a) != 4 || drain(t, b) != 4 {
		t.Fatal("parallel acquires interfere")
	}
}
