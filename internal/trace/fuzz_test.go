package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// edgeRecords are boundary-condition fixtures for the seed corpora:
// collectives at the maximum sequence number, zero-byte messages, and
// extreme-but-legal timestamps.
func edgeRecords() []Record {
	return []Record{
		{Kind: KindInit, Begin: 0, End: 0, Peer: NoRank, Root: NoRank},
		{Kind: KindSend, Begin: 1, End: 2, Peer: 1, Tag: 0, Bytes: 0, Root: NoRank},
		{Kind: KindRecv, Begin: 2, End: 3, Peer: 1, Tag: 0, Bytes: 0, Root: NoRank},
		{Kind: KindAllreduce, Begin: 4, End: 5, Peer: NoRank, Seq: math.MaxInt64,
			Bytes: 0, Root: NoRank, CommSize: 2},
		{Kind: KindBcast, Begin: 6, End: 7, Peer: NoRank, Seq: math.MaxInt64,
			Bytes: 1, Root: 0, Comm: math.MaxInt32, CommSize: 2},
		{Kind: KindFinalize, Begin: math.MaxInt64, End: math.MaxInt64,
			Peer: NoRank, Root: NoRank},
	}
}

// malformedSeeds are text traces modeled on the hand-built fixtures
// the structural linter (internal/verify) checks: the codec rejects
// the per-rank defects (non-monotone clock, end before begin) at parse
// time; the cross-rank ones (unmatched send, dangling wait) are valid
// text that only the set-level linter can flag, and must round-trip.
func malformedSeeds() []string {
	return []string{
		// Overlapping events on one rank: rejected at parse time.
		"# mpgt-text 1\nheader rank=0 nranks=2\nsend begin=100 end=200 peer=1 bytes=8\nsend begin=150 end=250 peer=1 bytes=8\n",
		// Equal boundary: begin == previous end is legal.
		"# mpgt-text 1\nheader rank=0 nranks=2\nsend begin=100 end=200 peer=1 bytes=8\nsend begin=200 end=250 peer=1 bytes=8\n",
		// Unmatched send and dangling wait: parse fine, lint dirty.
		"# mpgt-text 1\nheader rank=0 nranks=2\nsend begin=0 end=10 peer=1 bytes=4\n",
		"# mpgt-text 1\nheader rank=0 nranks=1\nwait begin=0 end=10 req=7\n",
		// Backwards clock within one record.
		"# mpgt-text 1\nheader rank=0 nranks=1\ninit begin=10 end=5\n",
	}
}

// encodeAll renders records through the binary codec.
func encodeAll(f *testing.F, hdr Header, recs []Record) []byte {
	f.Helper()
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, hdr)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecoder feeds arbitrary bytes to the binary decoder: it must
// return errors on garbage, never panic or loop. Run with
// `go test -fuzz=FuzzDecoder ./internal/trace` for a real campaign;
// the seed corpus below runs on every `go test`.
func FuzzDecoder(f *testing.F) {
	// Seeds: a valid stream, a truncated stream, pure garbage.
	var valid bytes.Buffer
	enc, err := NewEncoder(&valid, Header{Rank: 1, NRanks: 4,
		Meta: map[string]string{"k": "v"}})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := enc.Encode(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("MPGT"))
	f.Add([]byte("garbage that is not a trace at all"))
	f.Add([]byte{})
	// Boundary seeds: max-seq collectives and zero-byte messages, whole
	// and with the final record truncated mid-stream.
	edge := encodeAll(f, Header{Rank: 0, NRanks: 2}, edgeRecords())
	f.Add(edge)
	f.Add(edge[:len(edge)-1])
	f.Add(edge[:len(edge)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine
		}
		// Drain with a generous cap (malformed varints could otherwise
		// describe absurd record counts; each Decode must make progress
		// or error).
		for i := 0; i < 1_000_000; i++ {
			_, err := dec.Decode()
			if errors.Is(err, io.EOF) || err != nil {
				return
			}
		}
		t.Fatal("decoder failed to terminate on fuzzed input")
	})
}

// FuzzTextReader does the same for the text codec.
func FuzzTextReader(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteText(&valid, Header{Rank: 0, NRanks: 2}, sampleRecords()); err != nil {
		f.Fatal(err)
	}
	var edge bytes.Buffer
	if err := WriteText(&edge, Header{Rank: 1, NRanks: 2}, edgeRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(edge.String())
	f.Add(edge.String()[:edge.Len()-4]) // truncated final record
	f.Add("# mpgt-text 1\nheader rank=0 nranks=1\n")
	// A line past the old 1 MiB scanner cap: the reader must parse it,
	// not error with bufio.ErrTooLong (see TestTextLongLine).
	f.Add("# mpgt-text 1\nheader rank=0 nranks=1\nmeta blob=" +
		strings.Repeat("y", (1<<20)+512) + "\n")
	f.Add("nonsense")
	f.Add("")
	for _, s := range malformedSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		_, _, _ = ReadText(bytes.NewReader([]byte(s)))
	})
}

// FuzzTextRoundTrip checks the codec identity decode(encode(x)) == x:
// any input the text reader accepts must re-encode to a form that
// parses back to the same header and records.
func FuzzTextRoundTrip(f *testing.F) {
	for _, recs := range [][]Record{sampleRecords(), edgeRecords()} {
		var buf bytes.Buffer
		if err := WriteText(&buf, Header{Rank: 0, NRanks: 2,
			Meta: map[string]string{"workload": "tokenring"}}, recs); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("# mpgt-text 1\nheader rank=0 nranks=1\nmeta a=b=c\n")
	for _, s := range malformedSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		hdr, recs, err := ReadText(bytes.NewReader([]byte(s)))
		if err != nil {
			return // rejected input: fine
		}
		// Anything the reader accepts is a monotone serial history, so
		// the writer (which enforces the same invariant) must take it.
		var out bytes.Buffer
		if err := WriteText(&out, hdr, recs); err != nil {
			// The reader is more permissive than the writer in exactly
			// one place: metadata keys with spaces/'=' parse but are not
			// representable. Anything else must re-encode.
			for k := range hdr.Meta {
				if len(k) == 0 || bytes.ContainsAny([]byte(k), " =") {
					return
				}
			}
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		hdr2, recs2, err := ReadText(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v\n%s", err, out.Bytes())
		}
		if !reflect.DeepEqual(hdr, hdr2) {
			t.Fatalf("header round-trip mismatch:\n%+v\n%+v", hdr, hdr2)
		}
		if !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("records round-trip mismatch:\n%+v\n%+v", recs, recs2)
		}
	})
}
