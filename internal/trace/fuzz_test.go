package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecoder feeds arbitrary bytes to the binary decoder: it must
// return errors on garbage, never panic or loop. Run with
// `go test -fuzz=FuzzDecoder ./internal/trace` for a real campaign;
// the seed corpus below runs on every `go test`.
func FuzzDecoder(f *testing.F) {
	// Seeds: a valid stream, a truncated stream, pure garbage.
	var valid bytes.Buffer
	enc, err := NewEncoder(&valid, Header{Rank: 1, NRanks: 4,
		Meta: map[string]string{"k": "v"}})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := enc.Encode(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("MPGT"))
	f.Add([]byte("garbage that is not a trace at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine
		}
		// Drain with a generous cap (malformed varints could otherwise
		// describe absurd record counts; each Decode must make progress
		// or error).
		for i := 0; i < 1_000_000; i++ {
			_, err := dec.Decode()
			if errors.Is(err, io.EOF) || err != nil {
				return
			}
		}
		t.Fatal("decoder failed to terminate on fuzzed input")
	})
}

// FuzzTextReader does the same for the text codec.
func FuzzTextReader(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteText(&valid, Header{Rank: 0, NRanks: 2}, sampleRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add("# mpgt-text 1\nheader rank=0 nranks=1\n")
	f.Add("nonsense")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		_, _, _ = ReadText(bytes.NewReader([]byte(s)))
	})
}
