package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"testing"
)

func TestWriterFlushOnFull(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Rank: 0, NRanks: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	clock := int64(0)
	add := func() {
		t.Helper()
		rec := Record{Kind: KindBarrier, Begin: clock, End: clock + 10, Seq: clock/10 + 1,
			Peer: NoRank, Root: NoRank, CommSize: 1}
		clock += 10
		if err := w.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		add()
	}
	if w.Flushes() != 0 {
		t.Fatalf("flushed before buffer full: %d", w.Flushes())
	}
	add() // 4th record fills the buffer
	if w.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1", w.Flushes())
	}
	for i := 0; i < 5; i++ {
		add()
	}
	if w.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2", w.Flushes())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 9 {
		t.Fatalf("records = %d, want 9", w.Records())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != 9 {
		t.Fatalf("read back %d records, want 9", len(m.Records))
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Rank: 0, NRanks: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Record(Record{Kind: KindInit, Begin: 0, End: 100, Peer: NoRank, Root: NoRank}); err != nil {
		t.Fatal(err)
	}
	err = w.Record(Record{Kind: KindBarrier, Begin: 50, End: 60, Seq: 1, Peer: NoRank, Root: NoRank, CommSize: 1})
	if err == nil {
		t.Fatal("overlapping record accepted")
	}
}

func TestWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Rank: 0, NRanks: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(Record{Kind: KindInit, Peer: NoRank, Root: NoRank}); err == nil {
		t.Fatal("record after close accepted")
	}
}

func TestMemTraceReaderAndReset(t *testing.T) {
	m := &MemTrace{
		Hdr: Header{Rank: 0, NRanks: 1},
		Records: []Record{
			{Kind: KindInit, Begin: 0, End: 1, Peer: NoRank, Root: NoRank},
			{Kind: KindFinalize, Begin: 2, End: 3, Peer: NoRank, Root: NoRank},
		},
	}
	var got []Record
	for {
		r, err := m.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got, m.Records) {
		t.Fatalf("got %v", got)
	}
	m.Reset()
	if r, err := m.Next(); err != nil || r.Kind != KindInit {
		t.Fatalf("after reset: %v %v", r, err)
	}
}

func TestNewSetValidation(t *testing.T) {
	mk := func(rank, n int) *MemTrace {
		return &MemTrace{Hdr: Header{Rank: rank, NRanks: n}}
	}
	if _, err := NewSet(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewSet([]Reader{mk(0, 2), mk(1, 2)}); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if _, err := NewSet([]Reader{mk(0, 3), mk(1, 3)}); err == nil {
		t.Fatal("wrong world size accepted")
	}
	if _, err := NewSet([]Reader{mk(0, 2), mk(0, 2)}); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	set, err := NewSet([]Reader{mk(1, 2), mk(0, 2)}) // any order in, rank order out
	if err != nil {
		t.Fatal(err)
	}
	if set.NRanks() != 2 {
		t.Fatalf("NRanks = %d", set.NRanks())
	}
	if set.Rank(1).Header().Rank != 1 {
		t.Fatal("readers not indexed by rank")
	}
}

func TestFileRoundTripThroughDir(t *testing.T) {
	dir := t.TempDir()
	const nranks = 3
	for rank := 0; rank < nranks; rank++ {
		h := Header{Rank: rank, NRanks: nranks, Meta: map[string]string{"x": "y"}}
		w, closeFn, err := CreateFileWriter(dir, h, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 10; i++ {
			rec := Record{Kind: KindBarrier, Begin: i * 10, End: i*10 + 5, Seq: i + 1,
				Peer: NoRank, Root: NoRank, CommSize: 3}
			if err := w.Record(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := closeFn(); err != nil {
			t.Fatal(err)
		}
	}

	set, closeFn, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	if set.NRanks() != nranks {
		t.Fatalf("NRanks = %d", set.NRanks())
	}
	for rank := 0; rank < nranks; rank++ {
		m, err := ReadAll(set.Rank(rank))
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Records) != 10 {
			t.Fatalf("rank %d: %d records", rank, len(m.Records))
		}
		if m.Hdr.Meta["x"] != "y" {
			t.Fatalf("rank %d: metadata lost", rank)
		}
	}
}

func TestOpenDirEmpty(t *testing.T) {
	if _, _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestOpenDirRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/"+FileName(0), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDir(dir); err == nil {
		t.Fatal("corrupt trace accepted")
	}
}

func TestSetFromMem(t *testing.T) {
	a := &MemTrace{Hdr: Header{Rank: 0, NRanks: 2},
		Records: []Record{{Kind: KindInit, Peer: NoRank, Root: NoRank}}}
	b := &MemTrace{Hdr: Header{Rank: 1, NRanks: 2}}
	// Exhaust a first; SetFromMem must reset it.
	if _, err := a.Next(); err != nil {
		t.Fatal(err)
	}
	set, err := SetFromMem([]*MemTrace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := set.Rank(0).Next(); err != nil || r.Kind != KindInit {
		t.Fatalf("reset not applied: %v %v", r, err)
	}
}

func TestSetResetFileBacked(t *testing.T) {
	dir := t.TempDir()
	h := Header{Rank: 0, NRanks: 1}
	w, closeFn, err := CreateFileWriter(dir, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Record(Record{Kind: KindInit, Begin: 0, End: 1, Peer: NoRank, Root: NoRank}); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	set, closeAll, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll() //nolint:errcheck
	if set.Reset() {
		t.Fatal("file-backed set claimed to be rewindable")
	}
}

func TestSetResetInMemory(t *testing.T) {
	m := &MemTrace{Hdr: Header{Rank: 0, NRanks: 1},
		Records: []Record{{Kind: KindInit, Peer: NoRank, Root: NoRank}}}
	set, err := SetFromMem([]*MemTrace{m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Rank(0).Next(); err != nil {
		t.Fatal(err)
	}
	if !set.Reset() {
		t.Fatal("in-memory set not rewindable")
	}
	if r, err := set.Rank(0).Next(); err != nil || r.Kind != KindInit {
		t.Fatalf("reset did not rewind: %v %v", r, err)
	}
}
