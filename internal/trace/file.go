package trace

import (
	"fmt"
	"os"
	"path/filepath"
)

// FileName returns the canonical per-rank trace file name inside a
// trace directory: "rank-<NNNN>.mpgt".
func FileName(rank int) string { return fmt.Sprintf("rank-%04d.mpgt", rank) }

// CreateFileWriter creates (truncating) the trace file for h.Rank in
// dir and returns a buffered Writer over it plus a close function that
// finalizes both the stream and the file.
func CreateFileWriter(dir string, h Header, capacity int) (*Writer, func() error, error) {
	f, err := os.Create(filepath.Join(dir, FileName(h.Rank)))
	if err != nil {
		return nil, nil, err
	}
	w, err := NewWriter(f, h, capacity)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	closeAll := func() error {
		werr := w.Close()
		ferr := f.Close()
		if werr != nil {
			return werr
		}
		return ferr
	}
	return w, closeAll, nil
}

// OpenDir opens a directory of per-rank trace files as a Set. The
// world size is discovered by probing rank files from 0 upward. The
// returned close function releases all file handles.
func OpenDir(dir string) (*Set, func() error, error) {
	var files []*os.File
	closeAll := func() error {
		var first error
		for _, f := range files {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var readers []Reader
	for rank := 0; ; rank++ {
		path := filepath.Join(dir, FileName(rank))
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				break
			}
			closeAll() //nolint:errcheck
			return nil, nil, err
		}
		files = append(files, f)
		r, err := NewReader(f)
		if err != nil {
			closeAll() //nolint:errcheck
			return nil, nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		readers = append(readers, r)
	}
	if len(readers) == 0 {
		return nil, nil, fmt.Errorf("trace: no rank files found in %s", dir)
	}
	set, err := NewSet(readers)
	if err != nil {
		closeAll() //nolint:errcheck
		return nil, nil, err
	}
	return set, closeAll, nil
}

// SetFromMem wraps in-memory traces as a Set, resetting each so reads
// start from the beginning.
func SetFromMem(traces []*MemTrace) (*Set, error) {
	readers := make([]Reader, len(traces))
	for i, m := range traces {
		m.Reset()
		readers[i] = m
	}
	return NewSet(readers)
}
