package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	for _, tc := range []struct {
		k    Kind
		want string
	}{
		{KindSend, "send"},
		{KindRecv, "recv"},
		{KindIsend, "isend"},
		{KindAllreduce, "allreduce"},
		{KindInvalid, "invalid"},
		{Kind(200), "kind(200)"},
	} {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tc.k, got, tc.want)
		}
	}
}

func TestKindClassification(t *testing.T) {
	type want struct {
		p2p, coll, nonblk, compl, rooted bool
	}
	cases := map[Kind]want{
		KindSend:      {p2p: true},
		KindRecv:      {p2p: true},
		KindIsend:     {p2p: true, nonblk: true},
		KindIrecv:     {p2p: true, nonblk: true},
		KindWait:      {compl: true},
		KindWaitall:   {compl: true},
		KindBarrier:   {coll: true},
		KindBcast:     {coll: true, rooted: true},
		KindReduce:    {coll: true, rooted: true},
		KindAllreduce: {coll: true},
		KindGather:    {coll: true, rooted: true},
		KindAllgather: {coll: true},
		KindScatter:   {coll: true, rooted: true},
		KindAlltoall:  {coll: true},
		KindScan:      {coll: true},
		KindCommSplit: {coll: true},
		KindInit:      {},
		KindFinalize:  {},
		KindMarker:    {},
	}
	for k, w := range cases {
		if k.IsPointToPoint() != w.p2p {
			t.Errorf("%s.IsPointToPoint() = %v", k, k.IsPointToPoint())
		}
		if k.IsCollective() != w.coll {
			t.Errorf("%s.IsCollective() = %v", k, k.IsCollective())
		}
		if k.IsNonblocking() != w.nonblk {
			t.Errorf("%s.IsNonblocking() = %v", k, k.IsNonblocking())
		}
		if k.IsCompletion() != w.compl {
			t.Errorf("%s.IsCompletion() = %v", k, k.IsCompletion())
		}
		if k.IsRooted() != w.rooted {
			t.Errorf("%s.IsRooted() = %v", k, k.IsRooted())
		}
		if !k.Valid() {
			t.Errorf("%s.Valid() = false", k)
		}
	}
	if KindInvalid.Valid() || Kind(99).Valid() {
		t.Error("invalid kinds reported valid")
	}
}

func TestRecordValidate(t *testing.T) {
	good := []Record{
		{Kind: KindInit, Begin: 0, End: 10, Peer: NoRank, Root: NoRank},
		{Kind: KindSend, Begin: 5, End: 9, Peer: 1, Bytes: 100, Root: NoRank},
		{Kind: KindIsend, Begin: 5, End: 6, Peer: 1, Req: 3, Root: NoRank},
		{Kind: KindWait, Begin: 8, End: 12, Peer: NoRank, Req: 3, Root: NoRank},
		{Kind: KindAllreduce, Begin: 0, End: 4, Peer: NoRank, Seq: 1, Root: NoRank, Bytes: 8, CommSize: 2},
		{Kind: KindReduce, Begin: 0, End: 4, Peer: NoRank, Seq: 2, Root: 0, CommSize: 2},
		{Kind: KindMarker, Begin: 3, End: 3, Peer: NoRank, Tag: 7, Root: NoRank},
	}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("valid record %v rejected: %v", r, err)
		}
	}
	bad := []Record{
		{Kind: KindInvalid, Peer: NoRank, Root: NoRank},
		{Kind: Kind(99), Peer: NoRank, Root: NoRank},
		{Kind: KindInit, Begin: 10, End: 5, Peer: NoRank, Root: NoRank},
		{Kind: KindSend, Begin: 0, End: 1, Peer: NoRank, Root: NoRank},                       // pt2pt without peer
		{Kind: KindSend, Begin: 0, End: 1, Peer: 1, Bytes: -1, Root: NoRank},                 // negative size
		{Kind: KindIsend, Begin: 0, End: 1, Peer: 1, Root: NoRank},                           // missing req
		{Kind: KindWait, Begin: 0, End: 1, Peer: NoRank, Root: NoRank},                       // missing req
		{Kind: KindBarrier, Begin: 0, End: 1, Peer: NoRank, Root: NoRank},                    // missing seq
		{Kind: KindBcast, Begin: 0, End: 1, Peer: NoRank, Seq: 1, Root: NoRank, CommSize: 2}, // missing root
		{Kind: KindBarrier, Begin: 0, End: 1, Peer: NoRank, Seq: 1, Root: NoRank},            // missing comm size
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid record %v accepted", r)
		}
	}
}

func TestRecordDurationAndString(t *testing.T) {
	r := Record{Kind: KindSend, Begin: 100, End: 150, Peer: 2, Tag: 9, Bytes: 4096, Root: NoRank}
	if r.Duration() != 50 {
		t.Fatalf("Duration = %d", r.Duration())
	}
	s := r.String()
	for _, frag := range []string{"send", "100", "150", "peer=2", "tag=9", "bytes=4096"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestHeaderValidate(t *testing.T) {
	if err := (Header{Rank: 0, NRanks: 4}).Validate(); err != nil {
		t.Errorf("valid header rejected: %v", err)
	}
	for _, h := range []Header{
		{Rank: 0, NRanks: 0},
		{Rank: -1, NRanks: 4},
		{Rank: 4, NRanks: 4},
	} {
		if err := h.Validate(); err == nil {
			t.Errorf("invalid header %+v accepted", h)
		}
	}
}
