package trace

import (
	"errors"
	"fmt"
	"io"
)

// Writer is the paper's memory-resident event buffer (Section 4): the
// PMPI-style tracing layer records events into it, and when the buffer
// fills it is dumped to the underlying encoder and reset. The buffer
// size is tunable "to compensate for event frequency and overhead for
// I/O" — here it simply controls how often Encode batches are pushed
// to the (possibly file-backed) stream.
type Writer struct {
	enc      *Encoder
	buf      []Record
	capacity int
	flushes  int
	records  int64
	closed   bool
	lastEnd  int64
	started  bool
}

// NewWriter creates a buffered trace writer over w with the given
// buffer capacity (records). Capacity < 1 is treated as 1.
func NewWriter(w io.Writer, h Header, capacity int) (*Writer, error) {
	if capacity < 1 {
		capacity = 1
	}
	enc, err := NewEncoder(w, h)
	if err != nil {
		return nil, err
	}
	return &Writer{enc: enc, buf: make([]Record, 0, capacity), capacity: capacity}, nil
}

// Record appends one event. Events must be appended in non-decreasing
// Begin order and must not overlap (End of one event precedes Begin of
// the next); that is how a single sequential processor behaves, and
// the graph builder relies on it.
func (w *Writer) Record(r Record) error {
	if w.closed {
		return errors.New("trace: record on closed writer")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if w.started && r.Begin < w.lastEnd {
		return fmt.Errorf("trace: out-of-order record: begin %d before previous end %d", r.Begin, w.lastEnd)
	}
	w.started = true
	w.lastEnd = r.End
	w.buf = append(w.buf, r)
	w.records++
	if len(w.buf) >= w.capacity {
		return w.flush()
	}
	return nil
}

func (w *Writer) flush() error {
	for _, r := range w.buf {
		if err := w.enc.Encode(r); err != nil {
			return err
		}
	}
	w.buf = w.buf[:0]
	w.flushes++
	return nil
}

// Close flushes any buffered events and finalizes the stream.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if err := w.flush(); err != nil {
		return err
	}
	w.closed = true
	return w.enc.Close()
}

// Flushes returns how many times the internal buffer was dumped,
// exposed so tests can verify the flush-on-full behaviour.
func (w *Writer) Flushes() int { return w.flushes }

// Records returns the total number of events recorded.
func (w *Writer) Records() int64 { return w.records }

// Reader is a sequential source of one rank's trace records. Next
// returns io.EOF at the clean end of the stream.
type Reader interface {
	Header() Header
	Next() (Record, error)
}

// decoderReader adapts Decoder to Reader.
type decoderReader struct{ d *Decoder }

func (r decoderReader) Header() Header        { return r.d.Header() }
func (r decoderReader) Next() (Record, error) { return r.d.Decode() }

// NewReader wraps an encoded stream as a Reader.
func NewReader(src io.Reader) (Reader, error) {
	d, err := NewDecoder(src)
	if err != nil {
		return nil, err
	}
	return decoderReader{d: d}, nil
}

// MemTrace is an in-memory trace for one rank; it implements Reader
// (restartable via Reset) and is the form small tests and the DOT
// exporter use.
type MemTrace struct {
	Hdr     Header
	Records []Record
	pos     int
}

// Header implements Reader.
func (m *MemTrace) Header() Header { return m.Hdr }

// Next implements Reader.
func (m *MemTrace) Next() (Record, error) {
	if m.pos >= len(m.Records) {
		return Record{}, io.EOF
	}
	r := m.Records[m.pos]
	m.pos++
	return r, nil
}

// Reset rewinds the trace so it can be read again.
func (m *MemTrace) Reset() { m.pos = 0 }

// ReadAll drains a Reader into a MemTrace.
func ReadAll(r Reader) (*MemTrace, error) {
	m := &MemTrace{Hdr: r.Header()}
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return m, nil
		}
		if err != nil {
			return nil, err
		}
		m.Records = append(m.Records, rec)
	}
}

// Set is a complete traced run: one Reader per rank, indexed by rank.
// The graph builder consumes a Set.
type Set struct {
	readers []Reader
}

// NewSet builds a Set from per-rank readers. It validates that every
// rank 0..n-1 is present exactly once and that the headers agree on
// the world size.
func NewSet(readers []Reader) (*Set, error) {
	if len(readers) == 0 {
		return nil, errors.New("trace: empty trace set")
	}
	byRank := make([]Reader, len(readers))
	for _, r := range readers {
		h := r.Header()
		if h.NRanks != len(readers) {
			return nil, fmt.Errorf("trace: rank %d header claims %d ranks, set has %d",
				h.Rank, h.NRanks, len(readers))
		}
		if h.Rank < 0 || h.Rank >= len(readers) {
			return nil, fmt.Errorf("trace: rank %d outside world of size %d", h.Rank, len(readers))
		}
		if byRank[h.Rank] != nil {
			return nil, fmt.Errorf("trace: duplicate trace for rank %d", h.Rank)
		}
		byRank[h.Rank] = r
	}
	return &Set{readers: byRank}, nil
}

// NRanks returns the world size.
func (s *Set) NRanks() int { return len(s.readers) }

// Rank returns the reader for one rank.
func (s *Set) Rank(i int) Reader { return s.readers[i] }

// resetter is implemented by rewindable readers (MemTrace).
type resetter interface{ Reset() }

// Reset rewinds every reader to the beginning and reports whether it
// could (file-backed readers are not rewindable). A Set is otherwise
// single-use: the analyzer consumes its readers.
func (s *Set) Reset() bool {
	for _, r := range s.readers {
		if _, ok := r.(resetter); !ok {
			return false
		}
	}
	for _, r := range s.readers {
		r.(resetter).Reset()
	}
	return true
}
