package baseline

import (
	"mpgraph/internal/trace"
)

// retimeState accumulates the retimed schedule while a replay runs.
type retimeState struct {
	recs  [][]trace.Record
	hdrs  []trace.Header
	slack int64
}

// Retimed couples a replay result with the trace rewritten onto the
// replayed schedule and the replay's merge-slack budget.
type Retimed struct {
	// Result is the plain replay outcome (FinalTimes on the replayed
	// global clock).
	Result *Result
	// Traces holds one rank trace whose Begin/End timestamps are the
	// replayed schedule: Begin is when the rank reached the operation
	// (after its compute gap), End is when the operation completed.
	// All other record fields are preserved, per-rank order is
	// monotone, and compute gaps equal the replayed gap times — so
	// replaying the retimed trace under the same Params reproduces it
	// exactly (the model's fixed point; asserted by the verification
	// harness).
	Traces []*trace.MemTrace
	// Slack is the summed absolute gap between the two sides of every
	// max() merge in the replay (transfer matches, completion waits,
	// collective arrival spreads), in cycles. It bounds how far the
	// graph-traversal analyzer — which propagates delays without
	// consulting traced wait slack at DES merge points — can
	// overestimate a per-rank delay relative to a perturbed re-replay
	// of Traces (see doc/VERIFY.md).
	Slack int64
}

// ReplayRetimed replays the trace like Replay and additionally emits
// the trace rewritten onto the replayed schedule. The retimed trace is
// the bridge the differential verification harness runs both engines
// over: its timestamps are globally aligned by construction (they come
// off one DES clock), which is exactly the precondition the replayer
// needs and the graph analyzer does not.
func ReplayRetimed(set *trace.Set, p Params) (*Retimed, error) {
	res, ret, err := replay(set, p, true)
	if err != nil {
		return nil, err
	}
	out := &Retimed{Result: res, Slack: ret.slack}
	out.Traces = make([]*trace.MemTrace, len(ret.recs))
	for rank := range ret.recs {
		out.Traces[rank] = &trace.MemTrace{Hdr: ret.hdrs[rank], Records: ret.recs[rank]}
	}
	return out, nil
}
