package baseline

import (
	"testing"
	"testing/quick"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// traceOf runs a workload on a quiet, aligned-clock machine.
func traceOf(t *testing.T, name string, nranks int, opts workloads.Options) *trace.Set {
	t.Helper()
	prog, err := workloads.BuildByName(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: nranks, Seed: 17}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := res.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestReplayCompletesAllWorkloads(t *testing.T) {
	sizes := map[string]int{
		"tokenring": 6, "stencil1d": 5, "stencil2d": 6, "cg": 4,
		"masterworker": 4, "pipeline": 5, "butterfly": 4,
		"randompairs": 5, "bsp": 4, "wavefront": 6, "dynfarm": 4,
	}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			set := traceOf(t, name, sizes[name], workloads.Options{})
			res, err := Replay(set, Params{Latency: 1000, BytesPerCycle: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan <= 0 || res.Records == 0 {
				t.Fatalf("empty replay: %+v", res)
			}
			if res.EventsFired == 0 {
				t.Fatal("no DES events fired")
			}
		})
	}
}

func TestReplayDeterministic(t *testing.T) {
	set1 := traceOf(t, "cg", 4, workloads.Options{Iterations: 5})
	set2 := traceOf(t, "cg", 4, workloads.Options{Iterations: 5})
	p := Params{Latency: 500, BytesPerCycle: 2, OSNoise: dist.Exponential{MeanValue: 50}, Seed: 3}
	a, err := Replay(set1, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(set2, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic replay: %d vs %d", a.Makespan, b.Makespan)
	}
}

func TestReplayLatencyScalesTokenRing(t *testing.T) {
	// The ring's replayed makespan must grow ~linearly in the model
	// latency: one commTime per hop on the critical chain plus the ack.
	const p, iters = 8, 5
	set := func() *trace.Set {
		return traceOf(t, "tokenring", p, workloads.Options{Iterations: iters})
	}
	var xs, ys []float64
	for _, lat := range []int64{0, 500, 1000, 1500, 2000} {
		res, err := Replay(set(), Params{Latency: lat, BytesPerCycle: 1})
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, float64(lat))
		ys = append(ys, float64(res.Makespan))
	}
	fit := dist.FitLinear(xs, ys)
	if fit.R2 < 0.999 {
		t.Fatalf("replay not linear in latency: R2=%g", fit.R2)
	}
	hops := float64(p * iters)
	if fit.Slope < hops || fit.Slope > 2.5*hops {
		t.Fatalf("slope %g outside [%g,%g]", fit.Slope, hops, 2.5*hops)
	}
}

func TestReplayCPURatio(t *testing.T) {
	set1 := traceOf(t, "pipeline", 4, workloads.Options{Iterations: 6})
	set2 := traceOf(t, "pipeline", 4, workloads.Options{Iterations: 6})
	slow, err := Replay(set1, Params{Latency: 100, CPURatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Replay(set2, Params{Latency: 100, CPURatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= fast.Makespan {
		t.Fatalf("doubling CPU time did not slow the replay: %d vs %d", slow.Makespan, fast.Makespan)
	}
}

func TestReplayRejectsBadParams(t *testing.T) {
	set := traceOf(t, "tokenring", 3, workloads.Options{Iterations: 1})
	if _, err := Replay(set, Params{Latency: -1}); err == nil {
		t.Fatal("negative latency accepted")
	}
	set = traceOf(t, "tokenring", 3, workloads.Options{Iterations: 1})
	if _, err := Replay(set, Params{CPURatio: -2}); err == nil {
		t.Fatal("negative CPU ratio accepted")
	}
}

// TestBaselineAgreesOnSynchronous is Ablation C's correctness leg: on
// a fully synchronous workload, the graph analyzer's predicted
// makespan *growth* under an extra-latency delta must track the DES
// replayer's growth when its model latency increases by the same
// delta.
func TestBaselineAgreesOnSynchronous(t *testing.T) {
	const p, iters = 8, 6
	const delta = 2000.0
	mk := func() *trace.Set { return traceOf(t, "tokenring", p, workloads.Options{Iterations: iters}) }

	// Graph analyzer: inject delta per message edge.
	graphRes, err := core.Analyze(mk(), &core.Model{MsgLatency: dist.Constant{C: delta}}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// DES replayer: growth between base latency and base+delta.
	base, err := Replay(mk(), Params{Latency: 1000, BytesPerCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	bumped, err := Replay(mk(), Params{Latency: 1000 + int64(delta), BytesPerCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	desGrowth := float64(bumped.Makespan - base.Makespan)

	ratio := graphRes.MakespanDelay / desGrowth
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("graph growth %g vs DES growth %g (ratio %g) disagree beyond 2x",
			graphRes.MakespanDelay, desGrowth, ratio)
	}
}

func TestQuickReplayMonotoneInLatency(t *testing.T) {
	// Property: for arbitrary workloads and latencies, a larger model
	// latency never shrinks the replayed makespan.
	f := func(seed uint64) bool {
		rng := dist.NewRNG(seed)
		names := workloads.Names()
		name := names[rng.Intn(len(names))]
		n := 2 + rng.Intn(4)
		if name == "butterfly" {
			n = 4
		}
		opts := workloads.Options{Iterations: 1 + rng.Intn(3), Tasks: 4}
		prev := int64(-1)
		for _, lat := range []int64{0, 1000, 5000} {
			prog, err := workloads.BuildByName(name, opts)
			if err != nil {
				return false
			}
			res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: n, Seed: seed}}, prog)
			if err != nil {
				return false
			}
			set, err := res.TraceSet()
			if err != nil {
				return false
			}
			rep, err := Replay(set, Params{Latency: lat, BytesPerCycle: 1})
			if err != nil {
				return false
			}
			if rep.Makespan < prev {
				return false
			}
			prev = rep.Makespan
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
