// Package baseline is a Dimemas-style trace replayer: a classic
// discrete-event simulation that rebuilds a traced run's timing from a
// linear communication model (latency + size/bandwidth [+ noise]),
// keeping the traced CPU bursts (optionally rescaled).
//
// It exists as the related-work comparator (paper Section 1.1): the
// graph-traversal analyzer and this replayer answer similar questions,
// but differ exactly where the paper says they do —
//
//  1. the replayer *replaces* communication timings with its model,
//     while the analyzer perturbs the traced timings;
//  2. the replayer compares timestamps across ranks, so it silently
//     requires globally resolved clocks (the analyzer does not, §4.1);
//  3. the replayer loads each rank's full trace in core (as Dimemas
//     does), while the analyzer streams through a bounded window.
//
// Ablation C in EXPERIMENTS.md benchmarks both on the same traces.
package baseline

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"mpgraph/internal/des"
	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// Params is the linear communication model.
type Params struct {
	// Latency is the fixed one-way message latency in cycles.
	Latency int64
	// BytesPerCycle is the link bandwidth (0 disables the size term).
	BytesPerCycle float64
	// CPURatio rescales traced compute gaps (1.0 = unchanged, 0 is
	// treated as 1.0; 2.0 = a CPU half as fast).
	CPURatio float64
	// OSNoise, when non-nil, adds a sampled delay to every compute gap.
	OSNoise dist.Distribution
	// Seed drives noise sampling.
	Seed uint64
	// EagerData, when true, anchors each transfer at the sender: the
	// payload departs when the send posts and arrives commTime later,
	// so a receiver posting after the arrival finds the data already
	// delivered — the timing structure of the graph model's Fig. 2
	// data path. False keeps the classic Dimemas rendezvous, where the
	// transfer starts only once both sides are ready. The differential
	// verification harness (internal/verify) uses eager mode so the
	// two engines' merge structures align edge for edge.
	EagerData bool
	// MaxEvents aborts the replay with an error once the simulator has
	// fired this many events (0 = unbounded) — a guard for randomized
	// campaigns over generated traces.
	MaxEvents uint64
}

// Result is the replay outcome.
type Result struct {
	// FinalTimes is each rank's predicted completion time on the
	// replayer's global clock.
	FinalTimes []int64
	// Makespan is the maximum of FinalTimes.
	Makespan int64
	// EventsFired counts discrete events processed (the replay's cost
	// measure for the ablation benches).
	EventsFired uint64
	// Records is the total number of trace records replayed.
	Records int64
}

type xferKey struct {
	comm     int32
	src, dst int32
	tag      int32
}

type xfer struct {
	bytes       int64
	sendReady   bool
	recvReady   bool
	sendReadyAt int64
	recvReadyAt int64
	arrival     int64
	done        bool
	sendWaiter  *rankProc
	recvWaiter  *rankProc
}

type collKey struct {
	comm int32
	seq  int64
}

type coll struct {
	expect   int
	arrivals []int64
	procs    []*rankProc
	bytes    int64
}

type rankProc struct {
	rank    int
	recs    []trace.Record
	idx     int
	t       int64 // replayed global time
	reqs    map[uint64]*xfer
	reqIs   map[uint64]bool // request id -> isSend
	done    bool
	gapDone bool  // current record's preceding gap already elapsed
	posted  bool  // current record's side effects already applied
	curX    *xfer // the transfer the current record posted
}

// step advances to the next record, resetting per-record progress.
func (pr *rankProc) step() {
	pr.idx++
	pr.gapDone = false
	pr.posted = false
	pr.curX = nil
}

type replayer struct {
	sim    *des.Sim
	params Params
	rng    []*dist.RNG
	procs  []*rankProc
	queues map[xferKey][]*xfer
	colls  map[collKey]*coll
	ret    *retimeState // non-nil only under ReplayRetimed
}

// Replay rebuilds the traced run under the linear model. The trace's
// per-rank timestamps are interpreted on a shared global clock (the
// Dimemas assumption; feed aligned-clock traces).
func Replay(set *trace.Set, p Params) (*Result, error) {
	res, _, err := replay(set, p, false)
	return res, err
}

// replay is the shared implementation; retime additionally rebuilds
// the trace on the replayed schedule and accounts merge slack.
func replay(set *trace.Set, p Params, retime bool) (*Result, *retimeState, error) {
	if p.CPURatio == 0 {
		p.CPURatio = 1.0
	}
	if p.CPURatio < 0 {
		return nil, nil, fmt.Errorf("baseline: negative CPU ratio %g", p.CPURatio)
	}
	if p.Latency < 0 {
		return nil, nil, fmt.Errorf("baseline: negative latency %d", p.Latency)
	}
	n := set.NRanks()
	r := &replayer{
		sim:    &des.Sim{},
		params: p,
		rng:    make([]*dist.RNG, n),
		procs:  make([]*rankProc, n),
		queues: map[xferKey][]*xfer{},
		colls:  map[collKey]*coll{},
	}
	if p.MaxEvents > 0 {
		r.sim.SetLimit(p.MaxEvents)
	}
	if retime {
		r.ret = &retimeState{
			recs: make([][]trace.Record, n),
			hdrs: make([]trace.Header, n),
		}
	}
	root := dist.NewRNG(p.Seed)
	res := &Result{FinalTimes: make([]int64, n)}
	for rank := 0; rank < n; rank++ {
		r.rng[rank] = root.ForkNamed(fmt.Sprintf("rank-%d", rank))
		recs, err := readAll(set.Rank(rank))
		if err != nil {
			return nil, nil, err
		}
		res.Records += int64(len(recs))
		r.procs[rank] = &rankProc{
			rank:  rank,
			recs:  recs,
			reqs:  map[uint64]*xfer{},
			reqIs: map[uint64]bool{},
		}
		if r.ret != nil {
			r.ret.hdrs[rank] = set.Rank(rank).Header()
			r.ret.recs[rank] = append([]trace.Record(nil), recs...)
		}
	}
	for _, pr := range r.procs {
		pr := pr
		r.sim.At(0, des.EventFunc(func(*des.Sim) { r.advance(pr) }))
	}
	r.sim.Run()
	if r.sim.LimitReached() {
		return nil, nil, fmt.Errorf("baseline: replay exceeded the %d-event budget", p.MaxEvents)
	}

	var stuck []string
	for rank, pr := range r.procs {
		if !pr.done {
			stuck = append(stuck, fmt.Sprintf("rank %d at record %d", rank, pr.idx))
		}
		res.FinalTimes[rank] = pr.t
		if pr.t > res.Makespan {
			res.Makespan = pr.t
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return nil, nil, fmt.Errorf("baseline: replay deadlocked: %v", stuck)
	}
	res.EventsFired = r.sim.Fired()
	return res, r.ret, nil
}

func readAll(rd trace.Reader) ([]trace.Record, error) {
	var out []trace.Record
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// commTime is the linear model's transfer time for a payload.
func (r *replayer) commTime(bytes int64) int64 {
	t := r.params.Latency
	if r.params.BytesPerCycle > 0 && bytes > 0 {
		t += int64(float64(bytes) / r.params.BytesPerCycle)
	}
	return t
}

// gapTime rescales a traced compute gap and adds sampled noise
// (zero-length gaps accrue none, matching the analyzer's rule).
func (r *replayer) gapTime(rank int, gap int64) int64 {
	if gap <= 0 {
		return 0
	}
	out := int64(float64(gap) * r.params.CPURatio)
	if r.params.OSNoise != nil {
		n := int64(r.params.OSNoise.Sample(r.rng[rank]))
		if n > 0 {
			out += n
		}
	}
	return out
}

// advance runs one rank forward until it blocks, finishes, or yields
// to a scheduled wake. A parked rank re-enters at its current record;
// the gapDone/posted flags keep side effects single-shot.
func (r *replayer) advance(pr *rankProc) {
	for pr.idx < len(pr.recs) {
		rec := pr.recs[pr.idx]
		if !pr.gapDone {
			if pr.idx > 0 {
				gap := rec.Begin - pr.recs[pr.idx-1].End
				pr.t += r.gapTime(pr.rank, gap)
			}
			pr.gapDone = true
			if r.ret != nil {
				r.ret.recs[pr.rank][pr.idx].Begin = pr.t
			}
		}
		switch {
		case rec.Kind == trace.KindInit || rec.Kind == trace.KindFinalize ||
			rec.Kind == trace.KindMarker:
			pr.t += rec.Duration()

		case rec.Kind == trace.KindSend:
			if !pr.posted {
				pr.curX = r.post(pr, rec, true)
				pr.posted = true
			}
			x := pr.curX
			if !x.done {
				x.sendWaiter = pr
				return // parked; resolver reschedules us
			}
			s := x.arrival + r.params.Latency // rendezvous ack
			r.noteMergeSlack(pr.t, s)
			if s > pr.t {
				pr.t = s
			}

		case rec.Kind == trace.KindRecv:
			if !pr.posted {
				pr.curX = r.post(pr, rec, false)
				pr.posted = true
			}
			x := pr.curX
			if !x.done {
				x.recvWaiter = pr
				return
			}
			r.noteMergeSlack(pr.t, x.arrival)
			if x.arrival > pr.t {
				pr.t = x.arrival
			}

		case rec.Kind == trace.KindIsend || rec.Kind == trace.KindIrecv:
			isSend := rec.Kind == trace.KindIsend
			x := r.post(pr, rec, isSend)
			pr.reqs[rec.Req] = x
			pr.reqIs[rec.Req] = isSend
			pr.t += rec.Duration()

		case rec.Kind.IsCompletion():
			x := pr.reqs[rec.Req]
			if x == nil {
				// Corrupt trace; treat as instantaneous.
				break
			}
			if !x.done {
				if pr.reqIs[rec.Req] {
					x.sendWaiter = pr
				} else {
					x.recvWaiter = pr
				}
				return
			}
			c := x.arrival
			if pr.reqIs[rec.Req] {
				c += r.params.Latency // ack
			}
			r.noteMergeSlack(pr.t, c)
			if c > pr.t {
				pr.t = c
			}

		case rec.Kind.IsCollective():
			key := collKey{comm: rec.Comm, seq: rec.Seq}
			cs := r.colls[key]
			if cs == nil {
				cs = &coll{expect: int(rec.CommSize), bytes: rec.Bytes}
				r.colls[key] = cs
			}
			if !pr.posted {
				cs.arrivals = append(cs.arrivals, pr.t)
				cs.procs = append(cs.procs, pr)
				pr.posted = true
			}
			if len(cs.arrivals) < cs.expect {
				return // parked until the group completes
			}
			r.resolveColl(cs)
			delete(r.colls, key)
			// resolveColl advanced and rescheduled everyone, including
			// this rank.
			return

		default:
			pr.t += rec.Duration()
		}
		if r.ret != nil {
			r.ret.recs[pr.rank][pr.idx].End = pr.t
		}
		pr.step()
	}
	pr.done = true
}

// noteMergeSlack records the absolute gap between the two paths of a
// max() merge in the base schedule. The total is the retimed replay's
// slack budget: the graph model's delay overestimate at any node is
// bounded by the merge slack accumulated along its path (doc/VERIFY.md
// derives this), so the sum over all merges bounds it globally.
func (r *replayer) noteMergeSlack(local, remote int64) {
	if r.ret == nil {
		return
	}
	d := local - remote
	if d < 0 {
		d = -d
	}
	r.ret.slack += d
}

// post registers one side of a transfer and resolves it when both
// sides are present.
func (r *replayer) post(pr *rankProc, rec trace.Record, isSend bool) *xfer {
	var key xferKey
	if isSend {
		key = xferKey{comm: rec.Comm, src: int32(pr.rank), dst: rec.Peer, tag: rec.Tag}
	} else {
		key = xferKey{comm: rec.Comm, src: rec.Peer, dst: int32(pr.rank), tag: rec.Tag}
	}
	q := r.queues[key]
	var x *xfer
	for _, cand := range q {
		if isSend && !cand.sendReady || !isSend && !cand.recvReady {
			x = cand
			break
		}
	}
	if x == nil {
		x = &xfer{}
		r.queues[key] = append(q, x)
	}
	if isSend {
		x.sendReady = true
		x.sendReadyAt = pr.t
		x.bytes = rec.Bytes
	} else {
		x.recvReady = true
		x.recvReadyAt = pr.t
	}
	if x.sendReady && x.recvReady && !x.done {
		if r.params.EagerData {
			// Sender-anchored: the payload left at the send post; a
			// late receiver finds it delivered (Fig. 2 data path).
			x.arrival = x.sendReadyAt + r.commTime(x.bytes)
			r.noteMergeSlack(x.recvReadyAt, x.arrival)
			if x.recvReadyAt > x.arrival {
				x.arrival = x.recvReadyAt
			}
		} else {
			start := x.sendReadyAt
			if x.recvReadyAt > start {
				start = x.recvReadyAt
			}
			r.noteMergeSlack(x.sendReadyAt, x.recvReadyAt)
			x.arrival = start + r.commTime(x.bytes)
		}
		x.done = true
		r.dropMatched(key, x)
		r.wakeXfer(x)
	}
	return x
}

func (r *replayer) dropMatched(key xferKey, x *xfer) {
	q := r.queues[key]
	for i, cand := range q {
		if cand == x {
			r.queues[key] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(r.queues[key]) == 0 {
		delete(r.queues, key)
	}
}

// wakeXfer reschedules any rank parked on the transfer. The parked
// rank re-processes its current record, which now resolves.
func (r *replayer) wakeXfer(x *xfer) {
	at := x.arrival
	if at < r.sim.Now() {
		at = r.sim.Now()
	}
	if x.sendWaiter != nil {
		pr := x.sendWaiter
		x.sendWaiter = nil
		r.sim.At(at, des.EventFunc(func(*des.Sim) { r.advance(pr) }))
	}
	if x.recvWaiter != nil {
		pr := x.recvWaiter
		x.recvWaiter = nil
		r.sim.At(at, des.EventFunc(func(*des.Sim) { r.advance(pr) }))
	}
}

// resolveColl applies the linear model to a completed collective: a
// dissemination pattern of ceil(log2 p) rounds, each costing one
// commTime of the collective's payload.
func (r *replayer) resolveColl(cs *coll) {
	max := cs.arrivals[0]
	for _, t := range cs.arrivals[1:] {
		if t > max {
			max = t
		}
	}
	rounds := int64(ceilLog2(cs.expect))
	end := max + rounds*r.commTime(cs.bytes)
	for _, pr := range cs.procs {
		pr := pr
		r.noteMergeSlack(pr.t, max)
		pr.t = end
		if r.ret != nil {
			r.ret.recs[pr.rank][pr.idx].End = end
		}
		pr.step()
		at := end
		if at < r.sim.Now() {
			at = r.sim.Now()
		}
		r.sim.At(at, des.EventFunc(func(*des.Sim) { r.advance(pr) }))
	}
}

func ceilLog2(p int) int {
	r := 0
	for (1 << uint(r)) < p {
		r++
	}
	if r == 0 {
		r = 1
	}
	return r
}

// CollectiveRounds is the number of commTime rounds the replayer
// charges a p-participant collective: ceil(log2 p), minimum 1, for
// every collective kind (the replayer models them all as dissemination
// patterns). Exposed so the differential verification bounds can
// account for the graph model's differing round counts.
func CollectiveRounds(p int) int { return ceilLog2(p) }
