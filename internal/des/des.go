// Package des is a minimal deterministic discrete-event simulation
// kernel: a priority queue of timestamped events with stable FIFO
// ordering among equal timestamps. The Dimemas-like baseline replayer
// (internal/baseline) is built on it, and it is the general framework
// the paper contrasts its direct graph-traversal approach against
// (Section 1: "this is easily modeled as a discrete event simulation
// ... unlike a general discrete event model, we chose to directly
// analyze the message-passing graph").
package des

import "container/heap"

// Event is a unit of scheduled work. Fire runs at the event's
// timestamp and may schedule further events.
type Event interface {
	Fire(sim *Sim)
}

// EventFunc adapts a function to the Event interface.
type EventFunc func(sim *Sim)

// Fire implements Event.
func (f EventFunc) Fire(sim *Sim) { f(sim) }

type entry struct {
	at  int64
	seq uint64 // insertion order; breaks timestamp ties deterministically
	ev  Event
}

type eventHeap []entry

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator instance. The zero value is ready
// to use at time zero.
type Sim struct {
	now      int64
	seq      uint64
	queue    eventHeap
	fired    uint64
	halted   bool
	limit    uint64
	limitHit bool
}

// Now returns the current simulation time.
func (s *Sim) Now() int64 { return s.now }

// Fired returns how many events have fired so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled-but-unfired events.
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules ev to fire at absolute time t. Scheduling in the past
// (t < Now) panics: it would silently reorder causality.
func (s *Sim) At(t int64, ev Event) {
	if t < s.now {
		panic("des: event scheduled in the past")
	}
	s.seq++
	heap.Push(&s.queue, entry{at: t, seq: s.seq, ev: ev})
}

// After schedules ev to fire delay cycles from now; negative delays
// panic.
func (s *Sim) After(delay int64, ev Event) {
	if delay < 0 {
		panic("des: negative delay")
	}
	s.At(s.now+delay, ev)
}

// Halt stops the run loop after the current event returns, leaving any
// remaining events queued.
func (s *Sim) Halt() { s.halted = true }

// SetLimit caps the total number of events Run/RunUntil may fire
// (0 = unbounded). When the cap is hit the loop stops with the
// remaining events still queued and LimitReached reports true — a
// safety net for randomized replay campaigns, where a malformed input
// must not turn into an unbounded simulation.
func (s *Sim) SetLimit(n uint64) { s.limit = n }

// LimitReached reports whether a run stopped because the event limit
// was exhausted rather than because the queue drained.
func (s *Sim) LimitReached() bool { return s.limitHit }

// overLimit checks (and records) event-budget exhaustion.
func (s *Sim) overLimit() bool {
	if s.limit > 0 && s.fired >= s.limit {
		s.limitHit = true
		return true
	}
	return false
}

// Run fires events in timestamp order until the queue drains, Halt is
// called, or the event limit is reached. It returns the final
// simulation time.
func (s *Sim) Run() int64 {
	s.halted = false
	for len(s.queue) > 0 && !s.halted && !s.overLimit() {
		e := heap.Pop(&s.queue).(entry)
		s.now = e.at
		s.fired++
		e.ev.Fire(s)
	}
	return s.now
}

// RunUntil fires events with timestamps <= deadline, then stops (the
// clock is left at the last fired event's time, or unchanged if no
// event fired).
func (s *Sim) RunUntil(deadline int64) int64 {
	s.halted = false
	for len(s.queue) > 0 && !s.halted && s.queue[0].at <= deadline && !s.overLimit() {
		e := heap.Pop(&s.queue).(entry)
		s.now = e.at
		s.fired++
		e.ev.Fire(s)
	}
	return s.now
}
