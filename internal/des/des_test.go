package des

import (
	"testing"
	"testing/quick"

	"mpgraph/internal/dist"
)

func TestFiresInTimestampOrder(t *testing.T) {
	var s Sim
	var got []int64
	for _, at := range []int64{50, 10, 30, 20, 40} {
		at := at
		s.At(at, EventFunc(func(sim *Sim) { got = append(got, sim.Now()) }))
	}
	end := s.Run()
	if end != 50 {
		t.Fatalf("final time %d, want 50", end)
	}
	want := []int64{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Fired() != 5 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, EventFunc(func(*Sim) { got = append(got, i) }))
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of insertion order: %v", got)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var s Sim
	depth := 0
	var chain func(sim *Sim)
	chain = func(sim *Sim) {
		depth++
		if depth < 5 {
			sim.After(7, EventFunc(chain))
		}
	}
	s.At(0, EventFunc(chain))
	end := s.Run()
	if depth != 5 {
		t.Fatalf("depth = %d", depth)
	}
	if end != 28 {
		t.Fatalf("end = %d, want 28", end)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var s Sim
	s.At(100, EventFunc(func(sim *Sim) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		sim.At(50, EventFunc(func(*Sim) {}))
	}))
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	var s Sim
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, EventFunc(func(*Sim) {}))
}

func TestHalt(t *testing.T) {
	var s Sim
	fired := 0
	s.At(1, EventFunc(func(sim *Sim) { fired++; sim.Halt() }))
	s.At(2, EventFunc(func(*Sim) { fired++ }))
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after halt, want 1", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// Resume finishes the rest.
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	var got []int64
	for _, at := range []int64{10, 20, 30} {
		s.At(at, EventFunc(func(sim *Sim) { got = append(got, sim.Now()) }))
	}
	s.RunUntil(20)
	if len(got) != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", len(got))
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	if len(got) != 3 {
		t.Fatalf("resume after RunUntil fired %d total", len(got))
	}
}

func TestQuickMonotonicFiring(t *testing.T) {
	// Property: for arbitrary schedules, events always fire in
	// non-decreasing time order.
	f := func(seed uint64, n uint8) bool {
		r := dist.NewRNG(seed)
		var s Sim
		count := int(n)%64 + 1
		var times []int64
		for i := 0; i < count; i++ {
			s.At(int64(r.Intn(1000)), EventFunc(func(sim *Sim) {
				times = append(times, sim.Now())
			}))
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
