package microbench

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
)

func quietPlatform() machine.Config {
	return machine.Config{NRanks: 2, Seed: 1}
}

func noisyPlatform(mean float64) machine.Config {
	return machine.Config{
		NRanks:  2,
		Seed:    2,
		Noise:   dist.Exponential{MeanValue: mean},
		Latency: dist.Uniform{Low: 800, High: 1200},
	}
}

func TestFTQQuietPlatformIsNoiseless(t *testing.T) {
	samples, err := FTQ(quietPlatform(), 10_000, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range samples {
		if v != 0 {
			t.Fatalf("sample %d = %g on a noiseless platform", i, v)
		}
	}
}

func TestFTQRecoversNoiseMean(t *testing.T) {
	const mean = 150.0
	samples, err := FTQ(noisyPlatform(mean), 10_000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	s := dist.Summarize(samples)
	// One noise sample per compute call (no quantum on the machine),
	// so the FTQ per-quantum loss should match the machine's mean.
	if math.Abs(s.Mean-mean) > mean*0.15 {
		t.Fatalf("FTQ mean = %g, want ~%g", s.Mean, mean)
	}
}

func TestFTQSeesQuantizedNoise(t *testing.T) {
	// A machine with per-quantum interference: FTQ's per-quantum loss
	// tracks the machine quantum structure.
	p := machine.Config{
		NRanks:         2,
		Seed:           3,
		Noise:          dist.Constant{C: 25},
		ComputeQuantum: 5_000,
	}
	samples, err := FTQ(p, 10_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range samples {
		if v != 50 { // 2 quanta × 25
			t.Fatalf("quantized FTQ sample = %g, want 50", v)
		}
	}
}

func TestPingPongEstimatesLatency(t *testing.T) {
	p := quietPlatform() // constant latency 1000, overhead 100
	samples, err := PingPong(p, 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	s := dist.Summarize(samples)
	// One-way: overhead(100) + ser(8) + lat(1000) + ack lat(1000)
	// halves to ~ latency+overheads; must sit within a factor of ~2.5
	// of the true 1000.
	if s.Mean < 1000 || s.Mean > 2500 {
		t.Fatalf("ping-pong latency estimate %g implausible for true 1000", s.Mean)
	}
	if s.StdDev != 0 {
		t.Fatalf("constant-latency platform produced jitter %g", s.StdDev)
	}
}

func TestPingPongSeesJitter(t *testing.T) {
	samples, err := PingPong(noisyPlatform(0), 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Summarize(samples).StdDev == 0 {
		t.Fatal("jittery platform produced constant latency")
	}
}

func TestBandwidthRecoversConfiguredRate(t *testing.T) {
	p := quietPlatform()
	p.BytesPerCycle = 4
	bw, err := Bandwidth(p, 1<<20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw-4) > 0.2 {
		t.Fatalf("bandwidth = %g B/cycle, want ~4", bw)
	}
}

func TestMeasureAssemblesSignature(t *testing.T) {
	sig, err := Measure(noisyPlatform(80), Config{
		FTQSamples: 500, PingPongSamples: 200, BandwidthSamples: 10,
	}, "testplatform")
	if err != nil {
		t.Fatal(err)
	}
	if sig.Platform != "testplatform" {
		t.Fatal("label lost")
	}
	if len(sig.NoisePerQuantum) != 500 || len(sig.OneWayLatency) != 200 {
		t.Fatalf("sample counts: %d/%d", len(sig.NoisePerQuantum), len(sig.OneWayLatency))
	}
	if sig.BytesPerCycle <= 0 {
		t.Fatal("no bandwidth measured")
	}
	if sig.NoiseSummary().Mean <= 0 {
		t.Fatal("noisy platform produced zero FTQ mean")
	}
}

func TestMeasureRejectsSingleRank(t *testing.T) {
	if _, err := Measure(machine.Config{NRanks: 1, Seed: 1}, Config{}, "x"); err == nil {
		t.Fatal("single-rank platform accepted")
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	sig := &Signature{
		Platform:        "p1",
		Quantum:         10_000,
		NoisePerQuantum: []float64{0, 10, 20},
		OneWayLatency:   []float64{900, 1000, 1100},
		BytesPerCycle:   2.5,
	}
	path := filepath.Join(t.TempDir(), "sig.json")
	if err := sig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sig) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, sig)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := (&Signature{}).Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSignatureDistributions(t *testing.T) {
	sig := &Signature{
		NoisePerQuantum: []float64{0, 0, 0, 100},
		OneWayLatency:   []float64{1000, 1100, 1500},
	}
	n := sig.NoiseEmpirical()
	if n.Mean() != 25 {
		t.Fatalf("noise mean = %g", n.Mean())
	}
	j := sig.LatencyJitterEmpirical()
	// Jitter is latency minus the observed minimum.
	if j.Mean() != (0+100+500)/3.0 {
		t.Fatalf("jitter mean = %g", j.Mean())
	}
	r := dist.NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := j.Sample(r); v < 0 || v > 500 {
			t.Fatalf("jitter sample %g out of range", v)
		}
	}
}

// TestSignatureDrivesAnalyzer is the end-to-end Section 5 pipeline:
// measure a noisy platform, build empirical distributions, and feed
// them to the analyzer via a model — the signature must inject delay.
func TestSignatureDrivesAnalyzer(t *testing.T) {
	sig, err := Measure(noisyPlatform(120), Config{FTQSamples: 500, PingPongSamples: 100, BandwidthSamples: 5}, "noisy")
	if err != nil {
		t.Fatal(err)
	}
	noise := sig.NoiseEmpirical()
	if noise.Mean() <= 0 {
		t.Fatal("expected positive measured noise")
	}
	jitter := sig.LatencyJitterEmpirical()
	r := dist.NewRNG(7)
	for i := 0; i < 1000; i++ {
		if jitter.Sample(r) < 0 {
			t.Fatal("negative jitter sample")
		}
	}
}
