// Package microbench implements the paper's Section 5 measurement
// pipeline: microbenchmarks probe a platform for its OS-noise and
// interconnect behaviour, and the resulting samples become the
// empirical (or fitted analytic) distributions that parameterize the
// analyzer. The probes run as ordinary programs on the simulated
// runtime — exactly how they would run on real hardware — with tracing
// disabled.
//
// Implemented probes:
//   - FTQ (fixed time quantum, Sottile & Minnich): repeatedly time a
//     fixed-size work quantum; the excess over the nominal quantum is
//     the noise lost to the "OS".
//   - Ping-pong (Mraz-style): round-trip small messages between two
//     ranks; half the round trip estimates one-way latency and its
//     variability.
//   - Bandwidth: one-way large messages with a small acknowledgment;
//     payload divided by transfer time estimates sustainable
//     bandwidth.
package microbench

import (
	"encoding/json"
	"fmt"
	"os"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
)

// Config tunes the probe sizes.
type Config struct {
	// Quantum is the FTQ work quantum in cycles. Default 10_000.
	Quantum int64
	// FTQSamples is the number of FTQ quanta measured. Default 2000.
	FTQSamples int
	// PingPongSamples is the number of round trips. Default 1000.
	PingPongSamples int
	// PingPongBytes is the small-message size. Default 8.
	PingPongBytes int64
	// BandwidthBytes is the large-message size. Default 1 MiB.
	BandwidthBytes int64
	// BandwidthSamples is the number of large transfers. Default 50.
	BandwidthSamples int
}

func (c Config) withDefaults() Config {
	if c.Quantum <= 0 {
		c.Quantum = 10_000
	}
	if c.FTQSamples <= 0 {
		c.FTQSamples = 2000
	}
	if c.PingPongSamples <= 0 {
		c.PingPongSamples = 1000
	}
	if c.PingPongBytes <= 0 {
		c.PingPongBytes = 8
	}
	if c.BandwidthBytes <= 0 {
		c.BandwidthBytes = 1 << 20
	}
	if c.BandwidthSamples <= 0 {
		c.BandwidthSamples = 50
	}
	return c
}

// Signature is a platform's measured fingerprint (paper Section 5:
// "each parallel platform has a signature defined by the set of
// metrics determined by various microbenchmarks"). It serializes to
// JSON so signatures can be archived and fed to later analyses.
type Signature struct {
	// Platform is a free-form label.
	Platform string `json:"platform"`
	// Quantum is the FTQ quantum the noise samples refer to.
	Quantum int64 `json:"quantum"`
	// NoisePerQuantum holds FTQ samples: cycles lost per quantum.
	NoisePerQuantum []float64 `json:"noise_per_quantum"`
	// OneWayLatency holds ping-pong samples: estimated one-way small-
	// message latency in cycles (includes call overheads).
	OneWayLatency []float64 `json:"one_way_latency"`
	// BytesPerCycle is the measured bandwidth.
	BytesPerCycle float64 `json:"bytes_per_cycle"`
}

// NoiseSummary summarizes the FTQ samples.
func (s *Signature) NoiseSummary() dist.Summary { return dist.Summarize(s.NoisePerQuantum) }

// LatencySummary summarizes the ping-pong samples.
func (s *Signature) LatencySummary() dist.Summary { return dist.Summarize(s.OneWayLatency) }

// NoiseEmpirical returns the empirical OS-noise distribution.
func (s *Signature) NoiseEmpirical() dist.Distribution {
	return dist.NewEmpirical(s.NoisePerQuantum)
}

// LatencyEmpirical returns the empirical one-way latency distribution.
func (s *Signature) LatencyEmpirical() dist.Distribution {
	return dist.NewEmpirical(s.OneWayLatency)
}

// LatencyJitterEmpirical returns the empirical distribution of latency
// *in excess of the observed minimum* — the delta form the analyzer
// injects on message edges (the traced run already contains the base
// latency).
func (s *Signature) LatencyJitterEmpirical() dist.Distribution {
	min := dist.Summarize(s.OneWayLatency).Min
	shifted := make([]float64, len(s.OneWayLatency))
	for i, v := range s.OneWayLatency {
		shifted[i] = v - min
	}
	return dist.NewEmpirical(shifted)
}

// Save writes the signature as JSON.
func (s *Signature) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a signature written by Save.
func Load(path string) (*Signature, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Signature
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("microbench: %s: %w", path, err)
	}
	return &s, nil
}

// Measure runs all probes against the given platform model and
// assembles its signature. The platform needs at least 2 ranks for the
// messaging probes.
func Measure(platform machine.Config, cfg Config, label string) (*Signature, error) {
	cfg = cfg.withDefaults()
	if platform.NRanks < 2 {
		return nil, fmt.Errorf("microbench: need >= 2 ranks, got %d", platform.NRanks)
	}
	sig := &Signature{Platform: label, Quantum: cfg.Quantum}

	noise, err := FTQ(platform, cfg.Quantum, cfg.FTQSamples)
	if err != nil {
		return nil, err
	}
	sig.NoisePerQuantum = noise

	lat, err := PingPong(platform, cfg.PingPongBytes, cfg.PingPongSamples)
	if err != nil {
		return nil, err
	}
	sig.OneWayLatency = lat

	bw, err := Bandwidth(platform, cfg.BandwidthBytes, cfg.BandwidthSamples)
	if err != nil {
		return nil, err
	}
	sig.BytesPerCycle = bw
	return sig, nil
}

// FTQ measures cycles lost per fixed work quantum on rank 0 of the
// platform.
func FTQ(platform machine.Config, quantum int64, samples int) ([]float64, error) {
	out := make([]float64, 0, samples)
	_, err := mpi.Run(mpi.Config{Machine: platform, DisableTracing: true}, func(r *mpi.Rank) error {
		if r.Rank() != 0 {
			return nil
		}
		for i := 0; i < samples; i++ {
			t0 := r.Now()
			r.Compute(quantum)
			lost := (r.Now() - t0) - quantum
			out = append(out, float64(lost))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pingPongWarmup is the number of initial round trips discarded: the
// first exchanges run before the two ranks reach steady-state relative
// timing (the usual microbenchmark warm-up discipline).
const pingPongWarmup = 4

// PingPong measures estimated one-way latency between ranks 0 and 1:
// half of each small-message round trip, after a warm-up.
func PingPong(platform machine.Config, bytes int64, samples int) ([]float64, error) {
	out := make([]float64, 0, samples)
	total := samples + pingPongWarmup
	_, err := mpi.Run(mpi.Config{Machine: platform, DisableTracing: true}, func(r *mpi.Rank) error {
		switch r.Rank() {
		case 0:
			for i := 0; i < total; i++ {
				t0 := r.Now()
				r.Send(1, 0, bytes)
				r.Recv(1, 1)
				if i >= pingPongWarmup {
					out = append(out, float64(r.Now()-t0)/2)
				}
			}
		case 1:
			for i := 0; i < total; i++ {
				r.Recv(0, 0)
				r.Send(0, 1, bytes)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Bandwidth measures sustained bytes/cycle for large one-way messages
// (with a zero-byte acknowledgment), subtracting the small-message
// round-trip baseline so the latency component is discounted (the
// paper's requirement that the message be large enough for latency to
// be negligible is thereby relaxed).
func Bandwidth(platform machine.Config, bytes int64, samples int) (float64, error) {
	// Baseline: zero-payload round trip.
	base, err := PingPong(platform, 1, 100)
	if err != nil {
		return 0, err
	}
	baseRTT := 2 * dist.Summarize(base).Median

	var total float64
	_, err = mpi.Run(mpi.Config{Machine: platform, DisableTracing: true}, func(r *mpi.Rank) error {
		switch r.Rank() {
		case 0:
			for i := 0; i < samples; i++ {
				t0 := r.Now()
				r.Send(1, 0, bytes)
				r.Recv(1, 1) // zero-byte ack
				total += float64(r.Now() - t0)
			}
		case 1:
			for i := 0; i < samples; i++ {
				r.Recv(0, 0)
				r.Send(0, 1, 0)
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	perMsg := total/float64(samples) - baseRTT
	if perMsg <= 0 {
		return 0, fmt.Errorf("microbench: bandwidth probe produced non-positive transfer time")
	}
	return float64(bytes) / perMsg, nil
}
