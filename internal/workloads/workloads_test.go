package workloads

import (
	"reflect"
	"strings"
	"testing"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
)

// runAndAnalyze traces a workload on a quiet machine and runs a
// zero-model analysis; every workload must produce a self-consistent
// trace with zero delays under the zero model.
func runAndAnalyze(t *testing.T, name string, nranks int, opts Options) (*mpi.Result, *core.Result) {
	t.Helper()
	prog, err := BuildByName(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: nranks, Seed: 42}}, prog)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	set, err := res.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Analyze(set, &core.Model{}, core.Options{})
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	for rank, rr := range out.Ranks {
		if rr.FinalDelay != 0 {
			t.Fatalf("%s: rank %d has delay %g under zero model", name, rank, rr.FinalDelay)
		}
	}
	return res, out
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"bsp", "butterfly", "cg", "dynfarm", "masterworker",
		"pipeline", "randompairs", "stencil1d", "stencil2d", "tokenring",
		"wavefront"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		w, ok := Get(n)
		if !ok || w.Build == nil || w.Description == "" {
			t.Fatalf("workload %q incomplete", n)
		}
	}
}

func TestBuildByNameUnknown(t *testing.T) {
	if _, err := BuildByName("nope", Options{}); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown workload not rejected: %v", err)
	}
}

func TestAllWorkloadsTraceAndAnalyze(t *testing.T) {
	sizes := map[string]int{
		"tokenring": 8, "stencil1d": 6, "stencil2d": 6, "cg": 5,
		"masterworker": 5, "pipeline": 6, "butterfly": 8,
		"randompairs": 7, "bsp": 6, "wavefront": 6, "dynfarm": 5,
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, out := runAndAnalyze(t, name, sizes[name], Options{})
			if res.Stats.Events == 0 || out.Events == 0 {
				t.Fatal("no events recorded")
			}
		})
	}
}

func TestWorkloadsOnSingleRank(t *testing.T) {
	for _, name := range []string{"tokenring", "masterworker", "pipeline", "bsp", "cg", "stencil1d"} {
		runAndAnalyze(t, name, 1, Options{Iterations: 3, Tasks: 5})
	}
}

func TestTokenRingMessageCount(t *testing.T) {
	const p, iters = 6, 4
	res, _ := runAndAnalyze(t, "tokenring", p, Options{Iterations: iters})
	// One message per rank per traversal.
	if res.Stats.Messages != int64(p*iters) {
		t.Fatalf("messages = %d, want %d", res.Stats.Messages, p*iters)
	}
}

func TestTokenRingMarkers(t *testing.T) {
	prog, _ := BuildByName("tokenring", Options{Iterations: 2})
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 3, Seed: 1}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	markers := 0
	for _, rec := range res.Traces[0].Records {
		if rec.Kind == trace.KindMarker {
			markers++
		}
	}
	if markers != 2 {
		t.Fatalf("markers = %d, want 2", markers)
	}
}

func TestMasterWorkerTaskAccounting(t *testing.T) {
	const p, tasks = 4, 10
	res, _ := runAndAnalyze(t, "masterworker", p, Options{Tasks: tasks})
	// Messages: tasks work + tasks results + (p-1) stops.
	want := int64(tasks + tasks + (p - 1))
	if res.Stats.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Stats.Messages, want)
	}
}

func TestMasterWorkerMoreWorkersThanTasks(t *testing.T) {
	runAndAnalyze(t, "masterworker", 8, Options{Tasks: 3})
}

func TestButterflyRequiresPowerOfTwo(t *testing.T) {
	prog, _ := BuildByName("butterfly", Options{Iterations: 1})
	_, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 6, Seed: 1}}, prog)
	if err == nil || !strings.Contains(err.Error(), "power-of-two") {
		t.Fatalf("butterfly accepted 6 ranks: %v", err)
	}
}

func TestStencil1DCollectiveCadence(t *testing.T) {
	prog, _ := BuildByName("stencil1d", Options{Iterations: 10, CollEvery: 2})
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 4, Seed: 1}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Collectives != 5 {
		t.Fatalf("collectives = %d, want 5", res.Stats.Collectives)
	}
}

func TestStencil2DGridDecomposition(t *testing.T) {
	for _, tc := range []struct{ p, pv, ph int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4}, {7, 1, 7}, {16, 4, 4},
	} {
		pv, ph := grid2d(tc.p)
		if pv != tc.pv || ph != tc.ph {
			t.Errorf("grid2d(%d) = %d×%d, want %d×%d", tc.p, pv, ph, tc.pv, tc.ph)
		}
	}
}

func TestPipelineOrdering(t *testing.T) {
	// The last stage cannot finish before (stages-1) hops plus its own
	// compute have elapsed.
	const p, iters = 5, 3
	res, _ := runAndAnalyze(t, "pipeline", p, Options{Iterations: iters, Compute: 10_000})
	if res.FinalGlobal[p-1] < int64(p)*10_000 {
		t.Fatalf("last stage finished implausibly early: %d", res.FinalGlobal[p-1])
	}
	if res.Stats.Messages != int64((p-1)*iters) {
		t.Fatalf("messages = %d", res.Stats.Messages)
	}
}

func TestRandomPairsDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed uint64) int64 {
		prog, _ := BuildByName("randompairs", Options{Iterations: 5, Seed: seed})
		res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 6, Seed: 9}}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if run(1) != run(1) {
		t.Fatal("same seed produced different runs")
	}
}

func TestDefaultsApplied(t *testing.T) {
	w, _ := Get("tokenring")
	o := Options{}.withDefaults(w.Defaults)
	if o.Iterations != 10 || o.Bytes != 4096 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	// Explicit values win.
	o = Options{Iterations: 3}.withDefaults(w.Defaults)
	if o.Iterations != 3 || o.Bytes != 4096 {
		t.Fatalf("override lost: %+v", o)
	}
}

func TestWorkloadNoiseSensitivityOrdering(t *testing.T) {
	// Sanity cross-check of the methodology: under identical OS-noise
	// models, the collective-free pipeline is *less* noise-amplifying
	// than the allreduce-heavy cg workload (collectives globalize local
	// noise, paper §3.2).
	sense := func(name string, n int) float64 {
		prog, err := BuildByName(name, Options{Iterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: n, Seed: 5}}, prog)
		if err != nil {
			t.Fatal(err)
		}
		set, err := res.TraceSet()
		if err != nil {
			t.Fatal(err)
		}
		model := &core.Model{Seed: 1, OSNoise: dist.Exponential{MeanValue: 100}}
		out, err := core.Analyze(set, model, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Normalize by injected noise: amplification factor.
		var injected float64
		for _, rr := range out.Ranks {
			injected += rr.InjectedLocal
		}
		return out.MeanFinalDelay * float64(n) / injected
	}
	cg := sense("cg", 8)
	pipe := sense("pipeline", 8)
	if cg <= pipe {
		t.Fatalf("expected cg (%.3f) to amplify noise more than pipeline (%.3f)", cg, pipe)
	}
}

func TestDynFarmEdgeCases(t *testing.T) {
	// More workers than tasks; single rank; single task.
	runAndAnalyze(t, "dynfarm", 8, Options{Tasks: 3})
	runAndAnalyze(t, "dynfarm", 1, Options{Tasks: 4})
	runAndAnalyze(t, "dynfarm", 3, Options{Tasks: 1})
}

func TestDynFarmBalancesBetterThanStatic(t *testing.T) {
	// With skewed task costs, dynamic assignment finishes no later than
	// the static round-robin farm.
	run := func(name string) int64 {
		prog, err := BuildByName(name, Options{Tasks: 30, Compute: 50_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 5, Seed: 8}}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	dyn := run("dynfarm")
	static := run("masterworker")
	if dyn > static*11/10 {
		t.Fatalf("dynamic farm (%d) much slower than static (%d)", dyn, static)
	}
}

func TestWavefrontGridSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 9, 12} {
		runAndAnalyze(t, "wavefront", n, Options{Iterations: 2})
	}
}

func TestWavefrontPipelines(t *testing.T) {
	// The corner rank opposite the sweep origin finishes each sweep
	// last; with a 3x3 grid and 1 iteration the makespan must exceed
	// the pure compute time by the pipeline fill of 4 sweeps.
	res, _ := runAndAnalyze(t, "wavefront", 9, Options{Iterations: 1, Compute: 50_000})
	if res.Makespan < 4*50_000 {
		t.Fatalf("wavefront makespan %d implausibly small", res.Makespan)
	}
}
