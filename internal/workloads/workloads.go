// Package workloads provides the parallel application kernels used to
// generate traces: the paper's token-ring n-body study (Section 6.1)
// plus the communication patterns its methodology targets — halo
// exchanges, collective-heavy solvers, master/worker farms, pipelines,
// and irregular traffic. Each workload is an mpi.Program; all are
// deterministic given their options.
package workloads

import (
	"fmt"
	"sort"

	"mpgraph/internal/dist"
	"mpgraph/internal/mpi"
)

// Options are the common knobs shared by all workloads; each workload
// documents which fields it uses.
type Options struct {
	// Iterations is the outer iteration count (ring traversals, solver
	// steps, pipeline stages, ...).
	Iterations int
	// Bytes is the payload size of the workload's principal messages.
	Bytes int64
	// Compute is the per-iteration computation in cycles (scaled by
	// each workload's own logic).
	Compute int64
	// CollEvery inserts a collective every CollEvery iterations where
	// the workload supports it (0 disables).
	CollEvery int
	// Tasks is the total task count for master/worker.
	Tasks int
	// Seed drives workload-internal randomness (e.g. random pairs).
	Seed uint64
}

// withDefaults fills zero fields from d.
func (o Options) withDefaults(d Options) Options {
	if o.Iterations == 0 {
		o.Iterations = d.Iterations
	}
	if o.Bytes == 0 {
		o.Bytes = d.Bytes
	}
	if o.Compute == 0 {
		o.Compute = d.Compute
	}
	if o.CollEvery == 0 {
		o.CollEvery = d.CollEvery
	}
	if o.Tasks == 0 {
		o.Tasks = d.Tasks
	}
	return o
}

// Workload couples a named builder with its defaults.
type Workload struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary for tool listings.
	Description string
	// Defaults seed unset Options fields.
	Defaults Options
	// Build constructs the program for the given options.
	Build func(Options) mpi.Program
}

var registry = map[string]Workload{}

func register(w Workload) { registry[w.Name] = w }

// Get looks up a workload by name.
func Get(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// Names lists the registered workloads alphabetically.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BuildByName resolves name and builds its program with opts layered
// over the workload's defaults.
func BuildByName(name string, opts Options) (mpi.Program, error) {
	w, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return w.Build(opts.withDefaults(w.Defaults)), nil
}

func init() {
	register(Workload{
		Name:        "tokenring",
		Description: "paper §6.1: direct n-body via a token passed around the ring",
		Defaults:    Options{Iterations: 10, Bytes: 4096, Compute: 20_000},
		Build:       TokenRing,
	})
	register(Workload{
		Name:        "stencil1d",
		Description: "1-D halo exchange with nonblocking sends and periodic residual allreduce",
		Defaults:    Options{Iterations: 20, Bytes: 8192, Compute: 50_000, CollEvery: 5},
		Build:       Stencil1D,
	})
	register(Workload{
		Name:        "stencil2d",
		Description: "2-D 4-neighbor halo exchange on the largest square process grid",
		Defaults:    Options{Iterations: 10, Bytes: 4096, Compute: 80_000},
		Build:       Stencil2D,
	})
	register(Workload{
		Name:        "cg",
		Description: "conjugate-gradient-like iteration: halo exchange plus two dot-product allreduces",
		Defaults:    Options{Iterations: 25, Bytes: 8192, Compute: 60_000},
		Build:       CGLike,
	})
	register(Workload{
		Name:        "masterworker",
		Description: "rank 0 farms self-describing tasks to workers until exhaustion",
		Defaults:    Options{Tasks: 64, Bytes: 2048, Compute: 100_000},
		Build:       MasterWorker,
	})
	register(Workload{
		Name:        "pipeline",
		Description: "wavefront pipeline: each stage receives, computes, and forwards",
		Defaults:    Options{Iterations: 16, Bytes: 4096, Compute: 30_000},
		Build:       Pipeline,
	})
	register(Workload{
		Name:        "butterfly",
		Description: "explicit hypercube (butterfly) exchanges, power-of-two ranks only",
		Defaults:    Options{Iterations: 8, Bytes: 1024, Compute: 10_000},
		Build:       Butterfly,
	})
	register(Workload{
		Name:        "randompairs",
		Description: "random permutation pairwise exchanges each round (irregular traffic)",
		Defaults:    Options{Iterations: 12, Bytes: 2048, Compute: 15_000},
		Build:       RandomPairs,
	})
	register(Workload{
		Name:        "bsp",
		Description: "bulk-synchronous rounds: compute, alltoall, barrier",
		Defaults:    Options{Iterations: 10, Bytes: 512, Compute: 40_000},
		Build:       BSP,
	})
	register(Workload{
		Name:        "dynfarm",
		Description: "dynamic master/worker: tasks go to whichever worker finishes first (wildcard receives)",
		Defaults:    Options{Tasks: 64, Bytes: 2048, Compute: 100_000},
		Build:       DynFarm,
	})
	register(Workload{
		Name:        "wavefront",
		Description: "Sweep3D-style diagonal wavefronts over a 2-D process grid",
		Defaults:    Options{Iterations: 4, Bytes: 2048, Compute: 25_000},
		Build:       Wavefront,
	})
}

// TokenRing is the paper's Section 6.1 workload. Direct O(n²) n-body
// interaction: each rank owns a particle block; a token carrying one
// block circulates the ring Iterations times; on each hop a rank
// computes the interactions between its block and the token (Compute
// cycles) before forwarding. Rank 0 seeds the token (send first);
// everyone else receives first, exactly as in a textbook ring.
func TokenRing(o Options) mpi.Program {
	return func(r *mpi.Rank) error {
		if r.Size() == 1 {
			for k := 0; k < o.Iterations; k++ {
				r.Compute(o.Compute)
			}
			return nil
		}
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() + r.Size() - 1) % r.Size()
		r.Marker(1)
		for k := 0; k < o.Iterations; k++ {
			r.Compute(o.Compute)
			if r.Rank() == 0 {
				r.Send(next, 0, o.Bytes)
				r.Recv(prev, 0)
			} else {
				r.Recv(prev, 0)
				r.Send(next, 0, o.Bytes)
			}
		}
		r.Marker(2)
		return nil
	}
}

// Stencil1D is a classic 1-D Jacobi-style halo exchange: nonblocking
// ghost-cell exchange with both neighbors, interior compute overlapped
// before the waits, plus a residual Allreduce every CollEvery
// iterations.
func Stencil1D(o Options) mpi.Program {
	return func(r *mpi.Rank) error {
		left, right := r.Rank()-1, r.Rank()+1
		for k := 0; k < o.Iterations; k++ {
			var reqs []*mpi.Request
			if left >= 0 {
				reqs = append(reqs, r.Isend(left, 0, o.Bytes), r.Irecv(left, 1))
			}
			if right < r.Size() {
				reqs = append(reqs, r.Isend(right, 1, o.Bytes), r.Irecv(right, 0))
			}
			r.Compute(o.Compute) // interior overlap
			if len(reqs) > 0 {
				r.Waitall(reqs...)
			}
			r.Compute(o.Compute / 4) // boundary points
			if o.CollEvery > 0 && (k+1)%o.CollEvery == 0 {
				r.Allreduce(8)
			}
		}
		return nil
	}
}

// grid2d returns the largest pv×ph decomposition with pv*ph <= p and
// pv as close to sqrt(p) as possible.
func grid2d(p int) (pv, ph int) {
	pv = 1
	for i := 1; i*i <= p; i++ {
		if p%i == 0 {
			pv = i
		}
	}
	return pv, p / pv
}

// Stencil2D is a 2-D 4-neighbor halo exchange on a pv×ph process grid
// (ranks outside the grid idle at the collectives). Exchanges use
// Sendrecv per dimension.
func Stencil2D(o Options) mpi.Program {
	return func(r *mpi.Rank) error {
		pv, ph := grid2d(r.Size())
		inGrid := r.Rank() < pv*ph
		row, col := r.Rank()/ph, r.Rank()%ph
		for k := 0; k < o.Iterations; k++ {
			if inGrid {
				r.Compute(o.Compute)
				// Horizontal exchange (periodic).
				if ph > 1 {
					rightN := row*ph + (col+1)%ph
					leftN := row*ph + (col-1+ph)%ph
					r.Sendrecv(rightN, 0, o.Bytes, leftN, 0)
					r.Sendrecv(leftN, 1, o.Bytes, rightN, 1)
				}
				// Vertical exchange (periodic).
				if pv > 1 {
					downN := ((row+1)%pv)*ph + col
					upN := ((row-1+pv)%pv)*ph + col
					r.Sendrecv(downN, 2, o.Bytes, upN, 2)
					r.Sendrecv(upN, 3, o.Bytes, downN, 3)
				}
			}
			r.Barrier()
		}
		return nil
	}
}

// CGLike mimics a conjugate-gradient iteration's communication: a
// nonblocking halo exchange (the sparse matrix-vector product), then
// two scalar Allreduces (the dot products), then an axpy-sized compute.
func CGLike(o Options) mpi.Program {
	const (
		regionHalo = 1
		regionDots = 2
	)
	return func(r *mpi.Rank) error {
		left, right := r.Rank()-1, r.Rank()+1
		for k := 0; k < o.Iterations; k++ {
			r.Marker(regionHalo)
			var reqs []*mpi.Request
			if left >= 0 {
				reqs = append(reqs, r.Isend(left, 0, o.Bytes), r.Irecv(left, 1))
			}
			if right < r.Size() {
				reqs = append(reqs, r.Isend(right, 1, o.Bytes), r.Irecv(right, 0))
			}
			r.Compute(o.Compute)
			if len(reqs) > 0 {
				r.Waitall(reqs...)
			}
			r.Marker(regionDots)
			r.Allreduce(8) // alpha
			r.Compute(o.Compute / 2)
			r.Allreduce(8) // beta
		}
		return nil
	}
}

// MasterWorker has rank 0 farm out Tasks work units round-robin (the
// runtime has no wildcard receives, so assignment is static: task t
// goes to worker (t mod (p−1)) + 1). Workers compute Compute cycles
// per task, skewed by task id, and return a small result; a final
// stop message releases each worker. Task skew makes workers finish at
// different times, giving the analyzer imbalance to chew on.
func MasterWorker(o Options) mpi.Program {
	const (
		tagWork   = 1
		tagResult = 2
		tagStop   = 3
	)
	return func(r *mpi.Rank) error {
		if r.Size() == 1 {
			for i := 0; i < o.Tasks; i++ {
				r.Compute(o.Compute)
			}
			return nil
		}
		workers := r.Size() - 1
		if r.Rank() == 0 {
			task := 0
			for task < o.Tasks {
				batch := 0
				for w := 1; w <= workers && task < o.Tasks; w++ {
					r.Send(w, tagWork, o.Bytes)
					task++
					batch++
				}
				for w := 1; w <= batch; w++ {
					r.Recv(w, tagResult)
				}
			}
			for w := 1; w <= workers; w++ {
				r.Send(w, tagStop, 0)
			}
			return nil
		}
		// Worker: it knows its static share of the task ids.
		for task := r.Rank() - 1; task < o.Tasks; task += workers {
			r.Recv(0, tagWork)
			r.Compute(o.Compute + int64(task%7)*o.Compute/8)
			r.Send(0, tagResult, 64)
		}
		r.Recv(0, tagStop)
		return nil
	}
}

// DynFarm is the dynamic variant of MasterWorker: rank 0 assigns the
// next task to whichever worker returns a result first, using
// wildcard receives (MPI_ANY_SOURCE). Work arrives as a tag-1 message
// with a positive payload; a zero payload tells the worker to stop.
// Task durations are skewed by worker rank so completion order
// genuinely interleaves.
func DynFarm(o Options) mpi.Program {
	const (
		tagWork   = 1
		tagResult = 2
	)
	return func(r *mpi.Rank) error {
		if r.Size() == 1 {
			for i := 0; i < o.Tasks; i++ {
				r.Compute(o.Compute)
			}
			return nil
		}
		workers := r.Size() - 1
		if r.Rank() == 0 {
			next := 0
			for w := 1; w <= workers && next < o.Tasks; w++ {
				r.Send(w, tagWork, o.Bytes)
				next++
			}
			primed := next
			if primed == 0 {
				return nil
			}
			stopped := 0
			for stopped < primed {
				src, _ := r.RecvAny(tagResult)
				if next < o.Tasks {
					r.Send(src, tagWork, o.Bytes)
					next++
				} else {
					r.Send(src, tagWork, 0)
					stopped++
				}
			}
			// Workers never primed (more workers than tasks) idle until
			// a zero-payload release.
			for w := primed + 1; w <= workers; w++ {
				r.Send(w, tagWork, 0)
			}
			return nil
		}
		for {
			n := r.Recv(0, tagWork)
			if n == 0 {
				return nil
			}
			r.Compute(o.Compute + int64(r.Rank()%5)*o.Compute/4)
			r.Send(0, tagResult, 64)
		}
	}
}

// Pipeline is a linear wavefront: stage 0 injects Iterations items;
// every stage receives an item, computes on it, and forwards it.
func Pipeline(o Options) mpi.Program {
	return func(r *mpi.Rank) error {
		last := r.Size() - 1
		for k := 0; k < o.Iterations; k++ {
			if r.Rank() > 0 {
				r.Recv(r.Rank()-1, 0)
			}
			r.Compute(o.Compute)
			if r.Rank() < last {
				r.Send(r.Rank()+1, 0, o.Bytes)
			}
		}
		return nil
	}
}

// Butterfly performs explicit log2(p) hypercube exchanges per
// iteration using Sendrecv — the pattern underlying Allreduce, written
// out with point-to-point primitives. Requires a power-of-two size.
func Butterfly(o Options) mpi.Program {
	return func(r *mpi.Rank) error {
		p := r.Size()
		if p&(p-1) != 0 {
			return fmt.Errorf("workloads: butterfly needs a power-of-two size, got %d", p)
		}
		for k := 0; k < o.Iterations; k++ {
			r.Compute(o.Compute)
			for bit := 1; bit < p; bit <<= 1 {
				partner := r.Rank() ^ bit
				r.Sendrecv(partner, bit, o.Bytes, partner, bit)
			}
		}
		return nil
	}
}

// RandomPairs exchanges with a random partner each round: every round
// draws a deterministic random perfect matching (from Options.Seed) on
// the even-sized prefix of ranks; the odd rank out idles.
func RandomPairs(o Options) mpi.Program {
	return func(r *mpi.Rank) error {
		p := r.Size()
		even := p - p%2
		// Every rank derives the same per-round matchings from the seed.
		rng := dist.NewRNG(o.Seed + 0x9e37)
		for k := 0; k < o.Iterations; k++ {
			perm := make([]int, even)
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(even, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			r.Compute(o.Compute)
			if r.Rank() < even {
				var partner int
				for i := 0; i < even; i += 2 {
					if perm[i] == r.Rank() {
						partner = perm[i+1]
					}
					if perm[i+1] == r.Rank() {
						partner = perm[i]
					}
				}
				r.Sendrecv(partner, k, o.Bytes, partner, k)
			}
			r.Barrier()
		}
		return nil
	}
}

// Wavefront is a Sweep3D-style kernel: ranks form a 2-D grid; each
// iteration performs four diagonal sweeps (one per corner). Within a
// sweep, a rank receives upstream ghost data from its two upstream
// neighbors, computes, and sends downstream — the canonical pipelined
// dependence pattern of discrete-ordinates transport codes. Ranks
// outside the grid idle at the final barrier.
func Wavefront(o Options) mpi.Program {
	type dir struct{ dr, dc int }
	sweeps := []dir{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	return func(r *mpi.Rank) error {
		pv, ph := grid2d(r.Size())
		inGrid := r.Rank() < pv*ph
		row, col := r.Rank()/ph, r.Rank()%ph
		at := func(rr, cc int) int { return rr*ph + cc }
		for k := 0; k < o.Iterations; k++ {
			if inGrid {
				for si, sw := range sweeps {
					tag := k*len(sweeps) + si
					// Upstream neighbors: where the sweep comes from.
					upR, upC := row-sw.dr, col-sw.dc
					if upR >= 0 && upR < pv {
						r.Recv(at(upR, col), tag)
					}
					if upC >= 0 && upC < ph {
						r.Recv(at(row, upC), tag)
					}
					r.Compute(o.Compute)
					// Downstream neighbors: where the sweep goes.
					dnR, dnC := row+sw.dr, col+sw.dc
					if dnR >= 0 && dnR < pv {
						r.Send(at(dnR, col), tag, o.Bytes)
					}
					if dnC >= 0 && dnC < ph {
						r.Send(at(row, dnC), tag, o.Bytes)
					}
				}
			}
			r.Barrier()
		}
		return nil
	}
}

// BSP is a bulk-synchronous superstep loop: compute, alltoall,
// barrier.
func BSP(o Options) mpi.Program {
	return func(r *mpi.Rank) error {
		for k := 0; k < o.Iterations; k++ {
			r.Compute(o.Compute)
			r.Alltoall(o.Bytes)
			r.Barrier()
		}
		return nil
	}
}
