// Package mpi is a deterministic simulated MPI-1 runtime. Programs are
// ordinary Go functions of a *Rank handle; each rank runs as a
// goroutine, but the runtime sequences them one at a time in virtual
// time order, so a run is a sequential, perfectly reproducible
// discrete simulation whose only "time" is the virtual cycle counter.
//
// The runtime plays the role of the MPI library plus cluster in the
// paper's pipeline: it executes workloads on a machine model
// (internal/machine) and, through its built-in PMPI-style tracing
// layer, emits the per-rank event traces (internal/trace) that the
// graph builder (internal/core) consumes. Blocking and nonblocking
// point-to-point semantics, collectives, and communicators follow the
// MPI-1 subset the paper treats in Section 3.
package mpi

import (
	"errors"
	"fmt"
	"sort"

	"mpgraph/internal/machine"
	"mpgraph/internal/trace"
)

// Program is the per-rank body of a parallel run. It is invoked once
// per rank with that rank's handle. Returning a non-nil error aborts
// the whole run.
type Program func(r *Rank) error

// Config configures a run.
type Config struct {
	// Machine is the platform model configuration. Machine.NRanks is
	// the world size.
	Machine machine.Config
	// TraceBufferCap is the PMPI buffer capacity in records (Section 4
	// of the paper: the memory-resident buffer dumped when full).
	// Default 4096.
	TraceBufferCap int
	// TraceMeta is added to every rank's trace header.
	TraceMeta map[string]string
	// TraceDir, when non-empty, writes per-rank trace files there
	// instead of collecting traces in memory.
	TraceDir string
	// DisableTracing turns the tracing layer off entirely (used by
	// microbenchmarks probing the raw machine).
	DisableTracing bool
}

// Stats aggregates counters over a run.
type Stats struct {
	// Messages is the number of point-to-point transfers completed.
	Messages int64
	// BytesSent is the total point-to-point payload volume.
	BytesSent int64
	// Collectives is the number of collective operations (counted once
	// per operation, not per rank).
	Collectives int64
	// Events is the total number of trace records emitted.
	Events int64
}

// Result describes a completed run.
type Result struct {
	// Traces holds the in-memory per-rank traces (nil when TraceDir or
	// DisableTracing was used).
	Traces []*trace.MemTrace
	// FinalGlobal is each rank's final global virtual time.
	FinalGlobal []int64
	// Makespan is the maximum of FinalGlobal.
	Makespan int64
	// Stats holds run counters.
	Stats Stats
}

// TraceSet wraps the in-memory traces as a trace.Set.
func (r *Result) TraceSet() (*trace.Set, error) {
	if r.Traces == nil {
		return nil, errors.New("mpi: run did not collect in-memory traces")
	}
	return trace.SetFromMem(r.Traces)
}

// errAborted unwinds a rank goroutine when the world aborts.
var errAborted = errors.New("mpi: run aborted")

type procState uint8

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// proc is the runtime's per-rank bookkeeping.
type proc struct {
	rank   int
	now    int64 // global virtual time
	state  procState
	resume chan struct{}
	err    error
	why    string // blocked-on description for deadlock reports

	reqSeq uint64
	tracer *tracer
}

// World is one run in progress.
type World struct {
	cfg    Config
	m      *machine.Machine
	procs  []*proc
	parked chan *proc
	abort  bool

	queues    map[chanKey]*matchQueue
	colls     map[collKey]*collSync
	wildSends map[wildKey][]*xfer
	wildRecvs map[wildKey][]*wildRecv

	nextCommID int32
	splitSeq   int64

	stats Stats
}

// Run executes program on a fresh world and returns the result.
func Run(cfg Config, program Program) (*Result, error) {
	if cfg.TraceBufferCap <= 0 {
		cfg.TraceBufferCap = 4096
	}
	m, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	n := m.NRanks()
	w := &World{
		cfg:        cfg,
		m:          m,
		procs:      make([]*proc, n),
		parked:     make(chan *proc),
		queues:     make(map[chanKey]*matchQueue),
		colls:      make(map[collKey]*collSync),
		wildSends:  make(map[wildKey][]*xfer),
		wildRecvs:  make(map[wildKey][]*wildRecv),
		nextCommID: 1,
	}

	sinks := make([]recordSink, n)
	var closers []func() error
	for rank := 0; rank < n; rank++ {
		hdr := trace.Header{Rank: rank, NRanks: n, Meta: cfg.TraceMeta}
		switch {
		case cfg.DisableTracing:
			sinks[rank] = nopSink{}
		case cfg.TraceDir != "":
			fw, closeFn, err := trace.CreateFileWriter(cfg.TraceDir, hdr, cfg.TraceBufferCap)
			if err != nil {
				return nil, err
			}
			sinks[rank] = writerSink{w: fw}
			closers = append(closers, closeFn)
		default:
			sinks[rank] = &memSink{mem: &trace.MemTrace{Hdr: hdr}}
		}
	}

	for rank := 0; rank < n; rank++ {
		p := &proc{
			rank:   rank,
			state:  stateReady,
			resume: make(chan struct{}),
		}
		p.tracer = &tracer{world: w, rank: rank, sink: sinks[rank]}
		w.procs[rank] = p
	}
	for rank := 0; rank < n; rank++ {
		p := w.procs[rank]
		go w.runProc(p, program)
	}

	runErr := w.schedule()

	// Finalize traces.
	res := &Result{FinalGlobal: make([]int64, n), Stats: w.stats}
	for rank := 0; rank < n; rank++ {
		res.FinalGlobal[rank] = w.procs[rank].now
		if res.FinalGlobal[rank] > res.Makespan {
			res.Makespan = res.FinalGlobal[rank]
		}
	}
	for _, closeFn := range closers {
		if err := closeFn(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	if !cfg.DisableTracing && cfg.TraceDir == "" {
		res.Traces = make([]*trace.MemTrace, n)
		for rank := 0; rank < n; rank++ {
			res.Traces[rank] = sinks[rank].(*memSink).mem
		}
	}
	return res, nil
}

// runProc is the rank goroutine body.
func (w *World) runProc(p *proc, program Program) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errAborted) {
				p.err = errAborted
			} else {
				p.err = fmt.Errorf("mpi: rank %d panicked: %v", p.rank, r)
			}
		}
		p.state = stateDone
		w.parked <- p
	}()
	<-p.resume // wait for the first schedule
	if w.abort {
		panic(errAborted)
	}
	rank := &Rank{world: w, proc: p}
	rank.init()
	if err := program(rank); err != nil {
		p.err = fmt.Errorf("mpi: rank %d: %w", p.rank, err)
		return
	}
	rank.finalize()
}

// schedule is the deterministic run loop: repeatedly resume the ready
// proc with the smallest virtual time (ties broken by rank), wait for
// it to park, and stop when all procs are done or none can run.
func (w *World) schedule() error {
	for {
		next := w.pickReady()
		if next == nil {
			if w.allDone() {
				return w.collectErrors()
			}
			// Deadlock or error-induced stall: abort the stragglers.
			deadlockErr := w.deadlockError()
			w.abortAll()
			if err := w.collectErrors(); err != nil {
				return err
			}
			return deadlockErr
		}
		next.state = stateRunning
		next.resume <- struct{}{}
		p := <-w.parked
		if p.state == stateRunning {
			p.state = stateReady
		}
		if p.err != nil && !errors.Is(p.err, errAborted) && p.state == stateDone {
			// A rank failed; stop everything.
			w.abortAll()
			return w.collectErrors()
		}
	}
}

func (w *World) pickReady() *proc {
	var best *proc
	for _, p := range w.procs {
		if p.state != stateReady {
			continue
		}
		if best == nil || p.now < best.now {
			best = p
		}
	}
	return best
}

func (w *World) allDone() bool {
	for _, p := range w.procs {
		if p.state != stateDone {
			return false
		}
	}
	return true
}

// abortAll releases every non-done proc so its goroutine can unwind.
func (w *World) abortAll() {
	w.abort = true
	for {
		released := false
		for _, p := range w.procs {
			if p.state == stateBlocked || p.state == stateReady {
				p.state = stateRunning
				p.resume <- struct{}{}
				q := <-w.parked
				if q.state == stateRunning {
					q.state = stateReady
				}
				released = true
			}
		}
		if !released {
			break
		}
	}
}

func (w *World) collectErrors() error {
	var errs []error
	for _, p := range w.procs {
		if p.err != nil && !errors.Is(p.err, errAborted) {
			errs = append(errs, p.err)
		}
	}
	return errors.Join(errs...)
}

func (w *World) deadlockError() error {
	var stuck []string
	for _, p := range w.procs {
		if p.state == stateBlocked {
			stuck = append(stuck, fmt.Sprintf("rank %d: %s", p.rank, p.why))
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("mpi: deadlock; blocked ranks: %v", stuck)
}

// yield parks the calling proc and waits to be rescheduled. The caller
// must have set p.state (stateReady to stay runnable, stateBlocked to
// wait for another rank's action).
func (w *World) yield(p *proc) {
	w.parked <- p
	<-p.resume
	if w.abort {
		panic(errAborted)
	}
}

// block parks the proc until another rank unblocks it.
func (w *World) block(p *proc, why string) {
	p.state = stateBlocked
	p.why = why
	w.yield(p)
}

// unblock marks a blocked proc runnable at global time t.
func (w *World) unblock(p *proc, t int64) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("mpi: unblock of rank %d in state %d", p.rank, p.state))
	}
	if t > p.now {
		p.now = t
	}
	p.state = stateReady
	p.why = ""
}
