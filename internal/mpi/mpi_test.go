package mpi

import (
	"reflect"
	"strings"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/trace"
)

// quiet returns a machine config with deterministic, noise-free timing
// so tests can assert exact cycle counts:
// overhead 100, latency 1000, bandwidth 1 B/cycle.
func quiet(nranks int) machine.Config {
	return machine.Config{NRanks: nranks, Seed: 1}
}

func mustRun(t *testing.T, cfg Config, prog Program) *Result {
	t.Helper()
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func kinds(m *trace.MemTrace) []trace.Kind {
	out := make([]trace.Kind, len(m.Records))
	for i, r := range m.Records {
		out[i] = r.Kind
	}
	return out
}

func findKind(m *trace.MemTrace, k trace.Kind) *trace.Record {
	for i := range m.Records {
		if m.Records[i].Kind == k {
			return &m.Records[i]
		}
	}
	return nil
}

func TestSingleRankComputeOnly(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(1)}, func(r *Rank) error {
		r.Compute(5000)
		return nil
	})
	// init overhead (100) + compute 5000 + finalize overhead (100).
	if res.Makespan != 5200 {
		t.Fatalf("makespan = %d, want 5200", res.Makespan)
	}
	got := kinds(res.Traces[0])
	want := []trace.Kind{trace.KindInit, trace.KindFinalize}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kinds = %v", got)
	}
	// Compute time appears as the gap between init end and finalize begin.
	gap := res.Traces[0].Records[1].Begin - res.Traces[0].Records[0].End
	if gap != 5000 {
		t.Fatalf("compute gap = %d, want 5000", gap)
	}
}

func TestBlockingPingTiming(t *testing.T) {
	// Rank 0 sends 1000 bytes to rank 1 (rendezvous: EagerLimit=0).
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			r.Send(1, 7, 1000)
		case 1:
			if got := r.Recv(0, 7); got != 1000 {
				t.Errorf("recv returned %d bytes", got)
			}
		}
		return nil
	})
	tr0, tr1 := res.Traces[0], res.Traces[1]
	send := findKind(tr0, trace.KindSend)
	recv := findKind(tr1, trace.KindRecv)
	if send == nil || recv == nil {
		t.Fatal("missing send/recv records")
	}
	// Both ranks: init [0,100]. Send begins at 100, posts at 200.
	// Recv begins at 100, posts at 200. start=200, arrival=200+1000(ser)+1000(lat)=2200.
	// cR = 2200, cS = cR + 1000 (ack) = 3200.
	if send.Begin != 100 || send.End != 3200 {
		t.Fatalf("send = [%d,%d], want [100,3200]", send.Begin, send.End)
	}
	if recv.Begin != 100 || recv.End != 2200 {
		t.Fatalf("recv = [%d,%d], want [100,2200]", recv.Begin, recv.End)
	}
	if send.Bytes != 1000 || recv.Bytes != 1000 {
		t.Fatal("bytes not recorded")
	}
	if send.Peer != 1 || recv.Peer != 0 {
		t.Fatal("peers wrong")
	}
	if res.Stats.Messages != 1 || res.Stats.BytesSent != 1000 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestEagerSendDoesNotWaitForReceiver(t *testing.T) {
	cfg := quiet(2)
	cfg.EagerLimit = 4096
	res := mustRun(t, Config{Machine: cfg}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			r.Send(1, 0, 100)
		case 1:
			r.Compute(50_000) // receiver is late
			r.Recv(0, 0)
		}
		return nil
	})
	send := findKind(res.Traces[0], trace.KindSend)
	// Sender: init 100 + overhead 100 -> post at 200, copy 100 bytes -> end 300.
	if send.End != 300 {
		t.Fatalf("eager send end = %d, want 300", send.End)
	}
	recv := findKind(res.Traces[1], trace.KindRecv)
	// Receiver posts at 100+50000+100 = 50200, data long since arrived.
	if recv.End != 50200 {
		t.Fatalf("late eager recv end = %d, want 50200", recv.End)
	}
}

func TestRendezvousSendWaitsForReceiver(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			r.Send(1, 0, 100)
		case 1:
			r.Compute(50_000)
			r.Recv(0, 0)
		}
		return nil
	})
	send := findKind(res.Traces[0], trace.KindSend)
	// start = max(200, 50200) = 50200; arrival = 50200+100+1000 = 51300;
	// cR = 51300; cS = 51300+1000 = 52300.
	if send.End != 52300 {
		t.Fatalf("rendezvous send end = %d, want 52300", send.End)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			req := r.Isend(1, 3, 500)
			r.Compute(10_000) // overlap
			r.Wait(req)
		case 1:
			req := r.Irecv(0, 3)
			r.Compute(10_000)
			r.Wait(req)
			if req.Bytes() != 500 {
				t.Errorf("irecv bytes = %d", req.Bytes())
			}
		}
		return nil
	})
	tr0, tr1 := res.Traces[0], res.Traces[1]
	isend := findKind(tr0, trace.KindIsend)
	// Isend returns immediately: begin 100, end 200 (overhead only).
	if isend.End-isend.Begin != 100 {
		t.Fatalf("isend duration = %d, want overhead 100", isend.End-isend.Begin)
	}
	w0 := findKind(tr0, trace.KindWait)
	w1 := findKind(tr1, trace.KindWait)
	if w0 == nil || w1 == nil {
		t.Fatal("missing wait records")
	}
	if w0.Req != isend.Req {
		t.Fatal("wait does not reference isend request")
	}
	// Transfer: both posted at 200; start 200; arrival=200+500+1000=1700;
	// cR=1700 < wait entry (10300); so recv wait ends at its own 10300.
	if w1.End != 10300 {
		t.Fatalf("recv wait end = %d, want 10300", w1.End)
	}
	// Sender: cS = cR + 1000 = 2700 < 10300; same.
	if w0.End != 10300 {
		t.Fatalf("send wait end = %d, want 10300", w0.End)
	}
}

func TestWaitBlocksUntilPeerPosts(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			req := r.Isend(1, 0, 100)
			r.Wait(req) // blocks: no matching recv yet
		case 1:
			r.Compute(20_000)
			r.Recv(0, 0)
		}
		return nil
	})
	w0 := findKind(res.Traces[0], trace.KindWait)
	// recv posts at 20200; start = max(200,20200); arrival = 20200+100+1000=21300;
	// cS = 21300+1000 = 22300.
	if w0.End != 22300 {
		t.Fatalf("blocked wait end = %d, want 22300", w0.End)
	}
}

func TestWaitallRecordsPerRequest(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			a := r.Isend(1, 1, 10)
			b := r.Isend(1, 2, 10)
			r.Waitall(a, b)
		case 1:
			a := r.Irecv(0, 1)
			b := r.Irecv(0, 2)
			r.Waitall(a, b)
		}
		return nil
	})
	var waits []trace.Record
	for _, rec := range res.Traces[0].Records {
		if rec.Kind == trace.KindWaitall {
			waits = append(waits, rec)
		}
	}
	if len(waits) != 2 {
		t.Fatalf("got %d waitall records, want 2", len(waits))
	}
	// Convention: first record carries the interval, the rest are
	// zero-duration at the completion time (no per-rank overlap).
	if waits[0].End != waits[1].End {
		t.Fatal("waitall records should share the completion time")
	}
	if waits[1].Begin != waits[0].End || waits[1].Duration() != 0 {
		t.Fatalf("second waitall record should be zero-duration at completion: %+v", waits[1])
	}
	if waits[0].Req == waits[1].Req {
		t.Fatal("waitall records must reference distinct requests")
	}
}

func TestSendrecvExchange(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		peer := 1 - r.Rank()
		n := r.Sendrecv(peer, 0, 256, peer, 0)
		if n != 256 {
			t.Errorf("rank %d sendrecv returned %d bytes", r.Rank(), n)
		}
		return nil
	})
	got := kinds(res.Traces[0])
	want := []trace.Kind{trace.KindInit, trace.KindIsend, trace.KindIrecv,
		trace.KindWaitall, trace.KindWaitall, trace.KindFinalize}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kinds = %v", got)
	}
}

func TestMessageOrderNonOvertaking(t *testing.T) {
	// Two same-tag messages must match in order.
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			r.Send(1, 0, 111)
			r.Send(1, 0, 222)
		case 1:
			if got := r.Recv(0, 0); got != 111 {
				t.Errorf("first recv got %d bytes, want 111", got)
			}
			if got := r.Recv(0, 0); got != 222 {
				t.Errorf("second recv got %d bytes, want 222", got)
			}
		}
		return nil
	})
	_ = res
}

func TestTagsMatchIndependently(t *testing.T) {
	// Receives posted in the opposite tag order still match by tag.
	// Eager sends are required: with synchronous sends this pattern is
	// a genuine deadlock (rank 0 waits in send(tag 1) while rank 1
	// waits in recv(tag 2)) — see TestDeadlockDetected.
	cfg := quiet(2)
	cfg.EagerLimit = 1 << 20
	mustRun(t, Config{Machine: cfg}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			r.Send(1, 1, 100)
			r.Send(1, 2, 200)
		case 1:
			if got := r.Recv(0, 2); got != 200 {
				t.Errorf("tag-2 recv got %d", got)
			}
			if got := r.Recv(0, 1); got != 100 {
				t.Errorf("tag-1 recv got %d", got)
			}
		}
		return nil
	})
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(Config{Machine: quiet(2)}, func(r *Rank) error {
		// Both ranks receive first: classic deadlock (rendezvous).
		peer := 1 - r.Rank()
		r.Recv(peer, 0)
		r.Send(peer, 0, 10)
		return nil
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error = %v", err)
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	_, err := Run(Config{Machine: quiet(2)}, func(r *Rank) error {
		if r.Rank() == 1 {
			return strings.NewReader("").UnreadByte() // any error
		}
		r.Compute(10)
		return nil
	})
	if err == nil {
		t.Fatal("program error swallowed")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error lacks rank attribution: %v", err)
	}
}

func TestProgramPanicBecomesError(t *testing.T) {
	_, err := Run(Config{Machine: quiet(2)}, func(r *Rank) error {
		if r.Rank() == 0 {
			panic("boom")
		}
		r.Recv(0, 0) // would deadlock if not aborted
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not converted: %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Machine: machine.Config{
		NRanks:  4,
		Seed:    42,
		Noise:   dist.Exponential{MeanValue: 30},
		Latency: dist.Uniform{Low: 800, High: 1200},
	}}
	prog := func(r *Rank) error {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() + r.Size() - 1) % r.Size()
		for i := 0; i < 5; i++ {
			r.Compute(1000)
			r.Sendrecv(next, 0, 512, prev, 0)
			r.Allreduce(8)
		}
		return nil
	}
	a := mustRun(t, cfg, prog)
	b := mustRun(t, cfg, prog)
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %d vs %d", a.Makespan, b.Makespan)
	}
	for rank := range a.Traces {
		if !reflect.DeepEqual(a.Traces[rank].Records, b.Traces[rank].Records) {
			t.Fatalf("rank %d traces differ", rank)
		}
	}
}

func TestTraceTimesMonotonePerRank(t *testing.T) {
	cfg := Config{Machine: machine.Config{
		NRanks:        4,
		Seed:          7,
		Noise:         dist.Exponential{MeanValue: 50},
		ClockOffset:   dist.Uniform{Low: 0, High: 1e9},
		ClockDriftPPM: dist.Uniform{Low: -500, High: 500},
	}}
	res := mustRun(t, cfg, func(r *Rank) error {
		for i := 0; i < 10; i++ {
			r.Compute(500)
			r.Allreduce(8)
		}
		return nil
	})
	for rank, tr := range res.Traces {
		prevEnd := int64(-1 << 62)
		for i, rec := range tr.Records {
			if rec.Begin < prevEnd {
				t.Fatalf("rank %d record %d overlaps predecessor", rank, i)
			}
			if rec.End < rec.Begin {
				t.Fatalf("rank %d record %d negative duration", rank, i)
			}
			prevEnd = rec.End
		}
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, err := Run(Config{Machine: quiet(2)}, func(r *Rank) error {
		if r.Rank() == 0 {
			r.Send(0, 0, 10)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "self") {
		t.Fatalf("self-send not rejected: %v", err)
	}
}

func TestDoubleWaitPanics(t *testing.T) {
	_, err := Run(Config{Machine: quiet(2)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			req := r.Isend(1, 0, 10)
			r.Wait(req)
			r.Wait(req)
		case 1:
			r.Recv(0, 0)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("double wait not rejected: %v", err)
	}
}

func TestMarkerRecorded(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(1)}, func(r *Rank) error {
		r.Compute(100)
		r.Marker(42)
		return nil
	})
	m := findKind(res.Traces[0], trace.KindMarker)
	if m == nil || m.Tag != 42 || m.Begin != m.End {
		t.Fatalf("marker record = %+v", m)
	}
}

func TestRunToDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	res := mustRun(t, Config{Machine: quiet(2), TraceDir: dir,
		TraceMeta: map[string]string{"workload": "test"}}, func(r *Rank) error {
		peer := 1 - r.Rank()
		if r.Rank() == 0 {
			r.Send(peer, 0, 64)
		} else {
			r.Recv(peer, 0)
		}
		return nil
	})
	if res.Traces != nil {
		t.Fatal("dir-mode run should not collect in-memory traces")
	}
	set, closeFn, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	if set.NRanks() != 2 {
		t.Fatalf("NRanks = %d", set.NRanks())
	}
	m, err := trace.ReadAll(set.Rank(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Hdr.Meta["workload"] != "test" {
		t.Fatal("metadata lost")
	}
	if findKind(m, trace.KindSend) == nil {
		t.Fatal("send record missing in file trace")
	}
}

func TestClockDistortionAppearsInTraces(t *testing.T) {
	cfg := Config{Machine: machine.Config{
		NRanks:      2,
		Seed:        3,
		ClockOffset: dist.Uniform{Low: 1e6, High: 2e6},
	}}
	res := mustRun(t, cfg, func(r *Rank) error {
		r.Compute(100)
		return nil
	})
	// Init begins at global 0 but must be recorded at the local offset.
	first := res.Traces[0].Records[0]
	if first.Begin < 1_000_000 {
		t.Fatalf("trace not in local clock: init begin = %d", first.Begin)
	}
	// And the two ranks' offsets differ (cross-rank comparison invalid).
	if res.Traces[0].Records[0].Begin == res.Traces[1].Records[0].Begin {
		t.Fatal("ranks share an offset; expected distinct clocks")
	}
}

func TestTopologyAffectsTiming(t *testing.T) {
	// Sending across a ring (4 hops on 8 ranks) must take longer than
	// on a full crossbar; everything else equal.
	prog := func(r *Rank) error {
		switch r.Rank() {
		case 0:
			r.Send(4, 0, 100)
		case 4:
			r.Recv(0, 0)
		}
		return nil
	}
	full := mustRun(t, Config{Machine: machine.Config{NRanks: 8, Seed: 1}}, prog)
	ringy := mustRun(t, Config{Machine: machine.Config{NRanks: 8, Seed: 1,
		Topology: machine.TopoRing}}, prog)
	if ringy.Makespan <= full.Makespan {
		t.Fatalf("ring (%d) not slower than crossbar (%d)", ringy.Makespan, full.Makespan)
	}
	// 4 hops each way: data 4x + ack 4x = 3 extra data latencies and 3
	// extra ack latencies = +6000 cycles at constant 1000.
	if got := ringy.Makespan - full.Makespan; got != 6000 {
		t.Fatalf("ring overhead = %d, want 6000", got)
	}
}

func TestHeterogeneousCPUScale(t *testing.T) {
	// Rank 1's core is 3x slower: its compute takes 3x the cycles.
	cfg := quiet(2)
	cfg.CPUScale = []float64{1, 3}
	res := mustRun(t, Config{Machine: cfg}, func(r *Rank) error {
		r.Compute(10_000)
		return nil
	})
	d0 := res.FinalGlobal[0]
	d1 := res.FinalGlobal[1]
	if d1-d0 != 20_000 {
		t.Fatalf("slow core gained %d extra cycles, want 20000", d1-d0)
	}
}

func TestSsendForcesRendezvous(t *testing.T) {
	// Even on an eager machine, Ssend waits for the receiver.
	cfg := quiet(2)
	cfg.EagerLimit = 1 << 20
	res := mustRun(t, Config{Machine: cfg}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			r.Ssend(1, 0, 100)
		case 1:
			r.Compute(50_000)
			r.Recv(0, 0)
		}
		return nil
	})
	send := findKind(res.Traces[0], trace.KindSend)
	if send.End < 50_000 {
		t.Fatalf("Ssend completed before the receiver posted: end=%d", send.End)
	}
}

func TestBsendForcesBuffered(t *testing.T) {
	// Even on a rendezvous machine, Bsend completes after the copy.
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			r.Bsend(1, 0, 100)
		case 1:
			r.Compute(50_000)
			r.Recv(0, 0)
		}
		return nil
	})
	send := findKind(res.Traces[0], trace.KindSend)
	// init 100 + overhead 100 + copy 100 bytes = 300.
	if send.End != 300 {
		t.Fatalf("Bsend end = %d, want 300", send.End)
	}
}

func TestEmptyWaitallIsNoOp(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(1)}, func(r *Rank) error {
		r.Waitall()
		return nil
	})
	// Only init + finalize recorded.
	if len(res.Traces[0].Records) != 2 {
		t.Fatalf("records = %v", kinds(res.Traces[0]))
	}
}
