package mpi

import (
	"testing"

	"mpgraph/internal/core"
	"mpgraph/internal/machine"
	"mpgraph/internal/trace"
)

func TestRecvAnyResolvesSource(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				src, n := r.RecvAny(7)
				if n != int64(100*(src+1)) {
					t.Errorf("source %d delivered %d bytes", src, n)
				}
				seen[src] = true
			}
			if len(seen) != 3 {
				t.Errorf("sources seen: %v", seen)
			}
		default:
			r.Compute(int64(r.Rank()) * 10_000) // staggered arrival
			r.Send(0, 7, int64(100*(r.Rank()+1)))
		}
		return nil
	})
	// Every recv record carries the resolved source, never a wildcard.
	for _, rec := range res.Traces[0].Records {
		if rec.Kind == trace.KindRecv && rec.Peer < 0 {
			t.Fatalf("unresolved wildcard in trace: %+v", rec)
		}
	}
}

func TestRecvAnyAdoptsInPostingOrder(t *testing.T) {
	// Both senders post before the receiver calls RecvAny; the earliest
	// posted send is adopted first.
	mustRun(t, Config{Machine: quiet(3)}, func(r *Rank) error {
		switch r.Rank() {
		case 1:
			r.Send(0, 0, 111)
		case 2:
			r.Compute(50_000) // posts later
			r.Send(0, 0, 222)
		case 0:
			r.Compute(200_000) // both sends already pending
			src1, n1 := r.RecvAny(0)
			src2, n2 := r.RecvAny(0)
			if src1 != 1 || n1 != 111 {
				t.Errorf("first adoption: src=%d n=%d, want 1/111", src1, n1)
			}
			if src2 != 2 || n2 != 222 {
				t.Errorf("second adoption: src=%d n=%d, want 2/222", src2, n2)
			}
		}
		return nil
	})
}

func TestRecvAnyBlocksUntilAnySendArrives(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(3)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			src, _ := r.RecvAny(3)
			if src != 2 {
				t.Errorf("resolved src = %d, want 2", src)
			}
		case 2:
			r.Compute(80_000)
			r.Send(0, 3, 64)
		}
		return nil
	})
	recv := findKind(res.Traces[0], trace.KindRecv)
	if recv.End < 80_000 {
		t.Fatalf("wildcard recv completed before the send was posted: %d", recv.End)
	}
}

func TestRecvAnySpecificRecvPrecedence(t *testing.T) {
	// A specific receive posted for (src=1, tag) claims rank 1's send;
	// the wildcard then gets rank 2's.
	mustRun(t, Config{Machine: quiet(3)}, func(r *Rank) error {
		switch r.Rank() {
		case 0:
			// Specific receive first (it blocks until rank 1 sends).
			if got := r.Recv(1, 0); got != 111 {
				t.Errorf("specific recv got %d", got)
			}
			src, n := r.RecvAny(0)
			if src != 2 || n != 222 {
				t.Errorf("wildcard got src=%d n=%d", src, n)
			}
		case 1:
			r.Send(0, 0, 111)
		case 2:
			r.Send(0, 0, 222)
		}
		return nil
	})
}

func TestRecvAnyTracesAnalyzeCleanly(t *testing.T) {
	// Wildcard traces must flow through the graph builder untouched
	// (resolved sources make them ordinary pt2pt events).
	res := mustRun(t, Config{Machine: machine.Config{NRanks: 5, Seed: 3}}, func(r *Rank) error {
		if r.Rank() == 0 {
			for i := 0; i < (r.Size()-1)*2; i++ {
				src, _ := r.RecvAny(1)
				r.Send(src, 2, 16) // ack back to whoever it was
			}
		} else {
			for i := 0; i < 2; i++ {
				r.Send(0, 1, 128)
				r.Recv(0, 2)
			}
		}
		return nil
	})
	set, err := res.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Analyze(set, &core.Model{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range out.Ranks {
		if rr.FinalDelay != 0 {
			t.Fatalf("rank %d: nonzero delay under zero model", rank)
		}
	}
}

// TestDynamicMasterWorker is the workload wildcard receives exist
// for: the master hands the next task to whichever worker finishes
// first (unlike the static round-robin of workloads.MasterWorker).
func TestDynamicMasterWorker(t *testing.T) {
	// Deterministic dynamic farm: work = tag-1 payload >0; stop = tag-1
	// payload 0 (recognizable by the Recv return value).
	const tasks = 12
	mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		workers := r.Size() - 1
		if r.Rank() == 0 {
			next, done := 0, 0
			for w := 1; w <= workers && next < tasks; w++ {
				r.Send(w, 1, 1024)
				next++
			}
			stopped := 0
			for stopped < workers {
				src, _ := r.RecvAny(2)
				done++
				if next < tasks {
					r.Send(src, 1, 1024)
					next++
				} else {
					r.Send(src, 1, 0)
					stopped++
				}
			}
			return nil
		}
		for {
			n := r.Recv(0, 1)
			if n == 0 {
				return nil
			}
			r.Compute(int64(r.Rank()) * 7_000)
			r.Send(0, 2, 64)
		}
	})
}

func TestRecvAnyOnSubCommunicator(t *testing.T) {
	// Wildcard matching must scope to the communicator and return
	// comm-relative ranks.
	mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		sub := r.World().Split(r.Rank()%2, r.Rank())
		if sub.Rank() == 0 {
			src, n := sub.RecvAny(5)
			if src != 1 {
				t.Errorf("world %d: comm-relative source = %d, want 1", r.Rank(), src)
			}
			if n != int64(100+r.Rank()) {
				t.Errorf("world %d: bytes = %d", r.Rank(), n)
			}
		} else {
			// Send to comm rank 0 of my sub-communicator. Payload tags
			// the parity group via the receiver's world rank.
			sub.Send(0, 5, int64(100+r.Rank()%2))
		}
		return nil
	})
}
