package mpi

import (
	"reflect"
	"strings"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/trace"
)

func TestBarrierSynchronizes(t *testing.T) {
	// Rank 2 is 1M cycles late; everyone's barrier must end at or after
	// its arrival.
	res := mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		if r.Rank() == 2 {
			r.Compute(1_000_000)
		}
		r.Barrier()
		return nil
	})
	for rank, tr := range res.Traces {
		b := findKind(tr, trace.KindBarrier)
		if b == nil {
			t.Fatalf("rank %d missing barrier", rank)
		}
		if b.End < 1_000_000 {
			t.Fatalf("rank %d barrier ended at %d, before the straggler arrived", rank, b.End)
		}
		if b.CommSize != 4 || b.Seq != 1 {
			t.Fatalf("rank %d barrier metadata: %+v", rank, b)
		}
	}
	if res.Stats.Collectives != 1 {
		t.Fatalf("collectives = %d", res.Stats.Collectives)
	}
}

func TestAllreduceDominatedBySlowest(t *testing.T) {
	const late = 500_000
	res := mustRun(t, Config{Machine: quiet(8)}, func(r *Rank) error {
		if r.Rank() == 5 {
			r.Compute(late)
		}
		r.Allreduce(8)
		return nil
	})
	for rank, tr := range res.Traces {
		a := findKind(tr, trace.KindAllreduce)
		if a.End < late {
			t.Fatalf("rank %d allreduce end %d ignores straggler", rank, a.End)
		}
		// Completion should be straggler + O(log p * (lat+ser)), not huge.
		if a.End > late+20*1100+1000 {
			t.Fatalf("rank %d allreduce end %d implausibly late", rank, a.End)
		}
	}
}

func TestCollectiveSequenceNumbers(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(2)}, func(r *Rank) error {
		r.Barrier()
		r.Allreduce(8)
		r.Barrier()
		return nil
	})
	var seqs []int64
	for _, rec := range res.Traces[0].Records {
		if rec.Kind.IsCollective() {
			seqs = append(seqs, rec.Seq)
		}
	}
	if !reflect.DeepEqual(seqs, []int64{1, 2, 3}) {
		t.Fatalf("seqs = %v", seqs)
	}
}

func TestBcastRootRecorded(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		r.Bcast(2, 4096)
		return nil
	})
	for rank, tr := range res.Traces {
		b := findKind(tr, trace.KindBcast)
		if b.Root != 2 {
			t.Fatalf("rank %d bcast root = %d", rank, b.Root)
		}
		if b.Bytes != 4096 {
			t.Fatalf("rank %d bcast bytes = %d", rank, b.Bytes)
		}
	}
}

func TestBcastLatecomersDelayChildrenOnly(t *testing.T) {
	// With a late NON-root leaf, other ranks should not wait for it.
	const late = 2_000_000
	res := mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		if r.Rank() == 3 {
			r.Compute(late)
		}
		r.Bcast(0, 1024)
		return nil
	})
	b0 := findKind(res.Traces[0], trace.KindBcast)
	if b0.End >= late {
		t.Fatalf("root waited for a late leaf: end = %d", b0.End)
	}
	b3 := findKind(res.Traces[3], trace.KindBcast)
	if b3.End < late {
		t.Fatalf("late leaf finished before arriving: end = %d", b3.End)
	}
}

func TestReduceNonRootsFinishEarly(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(8)}, func(r *Rank) error {
		r.Reduce(0, 8)
		return nil
	})
	root := findKind(res.Traces[0], trace.KindReduce)
	leaf := findKind(res.Traces[7], trace.KindReduce)
	if leaf.End >= root.End {
		t.Fatalf("leaf (%d) should finish before root (%d) in a reduction", leaf.End, root.End)
	}
}

func TestGatherScatterComplete(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		r.Gather(1, 256)
		r.Scatter(1, 256)
		r.Allgather(64)
		r.Alltoall(64)
		return nil
	})
	for rank, tr := range res.Traces {
		for _, k := range []trace.Kind{trace.KindGather, trace.KindScatter,
			trace.KindAllgather, trace.KindAlltoall} {
			if findKind(tr, k) == nil {
				t.Fatalf("rank %d missing %s", rank, k)
			}
		}
	}
	if res.Stats.Collectives != 4 {
		t.Fatalf("collectives = %d", res.Stats.Collectives)
	}
}

func TestCollectiveWithNoise(t *testing.T) {
	cfg := Config{Machine: machine.Config{
		NRanks: 16,
		Seed:   11,
		Noise:  dist.Exponential{MeanValue: 200},
	}}
	res := mustRun(t, cfg, func(r *Rank) error {
		for i := 0; i < 3; i++ {
			r.Compute(1000)
			r.Allreduce(8)
		}
		return nil
	})
	// All ranks see 3 allreduces with matching seq, and a noisy run is
	// still deterministic (covered elsewhere); here just check the ends
	// are synchronized within a small spread per seq.
	for seq := int64(1); seq <= 3; seq++ {
		var ends []int64
		for _, tr := range res.Traces {
			for _, rec := range tr.Records {
				if rec.Kind == trace.KindAllreduce && rec.Seq == seq {
					ends = append(ends, rec.End)
				}
			}
		}
		if len(ends) != 16 {
			t.Fatalf("seq %d: %d records", seq, len(ends))
		}
	}
}

func TestNonPowerOfTwoCollectives(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 12} {
		res := mustRun(t, Config{Machine: quiet(n)}, func(r *Rank) error {
			r.Barrier()
			r.Allreduce(8)
			if n > 1 {
				r.Bcast(n-1, 100)
				r.Reduce(n/2, 8)
			}
			return nil
		})
		if res.Makespan <= 0 {
			t.Fatalf("n=%d: empty makespan", n)
		}
	}
}

func TestCollectiveMismatchPanics(t *testing.T) {
	_, err := Run(Config{Machine: quiet(2)}, func(r *Rank) error {
		if r.Rank() == 0 {
			r.Barrier()
		} else {
			r.Allreduce(8)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("collective mismatch not detected: %v", err)
	}
}

func TestBadRootPanics(t *testing.T) {
	_, err := Run(Config{Machine: quiet(2)}, func(r *Rank) error {
		r.Bcast(5, 10)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "root") {
		t.Fatalf("bad root not rejected: %v", err)
	}
}

func TestCommSplitGroups(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(6)}, func(r *Rank) error {
		// Evens and odds form separate communicators, ordered by
		// descending world rank via key.
		sub := r.World().Split(r.Rank()%2, -r.Rank())
		if sub == nil {
			t.Errorf("rank %d got nil comm", r.Rank())
			return nil
		}
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size %d", r.Rank(), sub.Size())
		}
		// Key = -world rank, so the highest world rank is comm rank 0.
		wantIdx := map[int]int{4: 0, 2: 1, 0: 2, 5: 0, 3: 1, 1: 2}[r.Rank()]
		if sub.Rank() != wantIdx {
			t.Errorf("rank %d: comm rank %d, want %d", r.Rank(), sub.Rank(), wantIdx)
		}
		sub.Barrier()
		sub.Allreduce(8)
		return nil
	})
	// Each rank: commsplit + 2 sub-collectives.
	for rank, tr := range res.Traces {
		split := findKind(tr, trace.KindCommSplit)
		if split == nil {
			t.Fatalf("rank %d missing commsplit record", rank)
		}
		if split.Comm != 0 {
			t.Fatalf("rank %d: split recorded on comm %d, want parent 0", rank, split.Comm)
		}
		b := findKind(tr, trace.KindBarrier)
		if b.Comm == 0 {
			t.Fatalf("rank %d: sub-barrier recorded on world comm", rank)
		}
		if b.CommSize != 3 {
			t.Fatalf("rank %d: sub-barrier comm size %d", rank, b.CommSize)
		}
	}
}

func TestCommSplitUndefinedColor(t *testing.T) {
	mustRun(t, Config{Machine: quiet(3)}, func(r *Rank) error {
		sub := r.World().Split(map[bool]int{true: 0, false: -1}[r.Rank() == 0], 0)
		if r.Rank() == 0 && sub == nil {
			t.Error("rank 0 should be in the new comm")
		}
		if r.Rank() != 0 && sub != nil {
			t.Errorf("rank %d should have no comm", r.Rank())
		}
		return nil
	})
}

func TestCommDup(t *testing.T) {
	mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		dup := r.World().Dup()
		if dup.Size() != 4 || dup.Rank() != r.Rank() {
			t.Errorf("rank %d: dup size=%d rank=%d", r.Rank(), dup.Size(), dup.Rank())
		}
		if dup.ID() == 0 {
			t.Error("dup shares the world comm id")
		}
		dup.Barrier()
		return nil
	})
}

func TestSubCommPointToPoint(t *testing.T) {
	mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		sub := r.World().Split(r.Rank()/2, r.Rank())
		// Within each pair, comm rank 0 sends to comm rank 1.
		if sub.Rank() == 0 {
			sub.Send(1, 9, 128)
		} else {
			if got := sub.Recv(0, 9); got != 128 {
				t.Errorf("sub recv got %d", got)
			}
		}
		return nil
	})
}

func TestCommWorldRankTranslation(t *testing.T) {
	mustRun(t, Config{Machine: quiet(4)}, func(r *Rank) error {
		sub := r.World().Split(0, -r.Rank()) // reversed order
		if got := sub.WorldRank(0); got != 3 {
			t.Errorf("comm rank 0 = world %d, want 3", got)
		}
		return nil
	})
}

func TestDisableTracing(t *testing.T) {
	res := mustRun(t, Config{Machine: quiet(2), DisableTracing: true}, func(r *Rank) error {
		r.Barrier()
		return nil
	})
	if res.Traces != nil {
		t.Fatal("traces collected with tracing disabled")
	}
	if res.Makespan == 0 {
		t.Fatal("no time advanced")
	}
}

func TestScanPrefixDependence(t *testing.T) {
	// MPI_Scan: a straggler at rank k delays ranks >= k but not < k.
	const p = 6
	const late = 1_000_000
	res := mustRun(t, Config{Machine: quiet(p)}, func(r *Rank) error {
		if r.Rank() == 3 {
			r.Compute(late)
		}
		r.Scan(8)
		return nil
	})
	for rank, tr := range res.Traces {
		s := findKind(tr, trace.KindScan)
		if s == nil {
			t.Fatalf("rank %d missing scan", rank)
		}
		if rank < 3 && s.End >= late {
			t.Fatalf("rank %d (before straggler) waited: end %d", rank, s.End)
		}
		if rank >= 3 && s.End < late {
			t.Fatalf("rank %d (at/after straggler) finished early: end %d", rank, s.End)
		}
	}
}
