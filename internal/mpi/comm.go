package mpi

import (
	"fmt"

	"mpgraph/internal/trace"
)

// Comm is a communicator handle held by one rank. Two ranks in the
// same communicator hold distinct Comm values sharing the id and the
// member list (in communicator rank order). Collective sequence
// numbers are counted locally per handle; they agree across members
// because MPI requires all members to issue collectives in the same
// order.
type Comm struct {
	rank    *Rank
	id      int32
	members []int // world ranks, indexed by communicator rank
	myIdx   int   // this rank's communicator rank
	seq     int64
}

// ID returns the communicator id (0 is the world communicator).
func (c *Comm) ID() int32 { return c.id }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.myIdx }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.members) {
		panic(fmt.Sprintf("mpi: comm rank %d outside communicator of size %d", commRank, len(c.members)))
	}
	return c.members[commRank]
}

// --- Point-to-point ---------------------------------------------------

// chanKey identifies a point-to-point matching queue. Ranks are world
// ranks; comm scopes tags.
type chanKey struct {
	comm     int32
	src, dst int32
	tag      int32
}

// matchQueue holds unmatched posted operations for one key, FIFO.
type matchQueue struct {
	sends []*xfer
	recvs []*xfer
}

// xfer is one point-to-point transfer from posting to completion.
type xfer struct {
	comm     int32
	src, dst int32 // world ranks
	tag      int32
	bytes    int64

	sendPost, recvPost int64 // global post times (after call overhead)
	sendPosted         bool
	recvPosted         bool

	eager        bool
	eagerArrival int64 // data arrival, precomputed at eager send post

	cS, cR           int64 // completion times
	cSValid, cRValid bool

	sendWaiter *proc // proc blocked awaiting the send completion
	recvWaiter *proc // proc blocked awaiting the recv completion
}

func (x *xfer) setWaiter(isSend bool, p *proc) {
	if isSend {
		x.sendWaiter = p
	} else {
		x.recvWaiter = p
	}
}

// wildKey indexes pending operations by destination and tag across
// all sources, for AnySource matching.
type wildKey struct {
	comm int32
	dst  int32
	tag  int32
}

func (w *World) queue(k chanKey) *matchQueue {
	q := w.queues[k]
	if q == nil {
		q = &matchQueue{}
		w.queues[k] = q
	}
	return q
}

// postSend registers a send (blocking or not) at global time post and
// returns the transfer. If a matching receive is already pending, the
// transfer is completed immediately.
func (w *World) postSend(comm int32, src, dst, tag int32, bytes, post int64) *xfer {
	return w.postSendMode(comm, src, dst, tag, bytes, post, sendDefault)
}

// postSendMode is postSend with an explicit blocking-send flavour.
func (w *World) postSendMode(comm int32, src, dst, tag int32, bytes, post int64, mode sendMode) *xfer {
	k := chanKey{comm: comm, src: src, dst: dst, tag: tag}
	q := w.queue(k)
	var x *xfer
	if len(q.recvs) > 0 {
		x = q.recvs[0]
		q.recvs = q.recvs[1:]
		x.bytes = bytes
	} else {
		x = &xfer{comm: comm, src: src, dst: dst, tag: tag, bytes: bytes}
		q.sends = append(q.sends, x)
	}
	x.sendPosted = true
	x.sendPost = post
	switch mode {
	case sendSync:
		x.eager = false
	case sendBuffered:
		x.eager = true
	default:
		x.eager = w.m.Eager(bytes)
	}
	if !x.recvPosted {
		// A wildcard receive may be waiting for any source.
		wk := wildKey{comm: comm, dst: dst, tag: tag}
		if rq := w.wildRecvs[wk]; len(rq) > 0 {
			wr := rq[0]
			w.wildRecvs[wk] = rq[1:]
			if len(w.wildRecvs[wk]) == 0 {
				delete(w.wildRecvs, wk)
			}
			// Splice: the wildcard receive adopts this transfer. Remove
			// the fresh xfer from the specific queue and transplant the
			// receive side.
			w.dropUnmatched(k, x)
			x.recvPosted = true
			x.recvPost = wr.recvPost
			x.recvWaiter = wr.recvWaiter
			wr.adopted = x
		} else {
			w.wildSends[wk] = append(w.wildSends[wk], x)
		}
	}
	if x.eager {
		// Eager: data leaves as soon as the sender posts; the sender
		// completes after the local copy/injection, independent of the
		// receiver.
		ser := w.m.XferCycles(bytes)
		injStart := w.m.InjectAt(int(src), post, ser)
		x.eagerArrival = injStart + ser + w.m.PathLatency(int(src), int(dst))
		x.cS = post + ser
		x.cSValid = true
	}
	if x.recvPosted {
		w.completeMatch(x)
	}
	return x
}

// postRecv registers a receive (blocking or not) at global time post.
func (w *World) postRecv(comm int32, src, dst, tag int32, post int64) *xfer {
	k := chanKey{comm: comm, src: src, dst: dst, tag: tag}
	q := w.queue(k)
	var x *xfer
	if len(q.sends) > 0 {
		x = q.sends[0]
		q.sends = q.sends[1:]
	} else {
		x = &xfer{comm: comm, src: src, dst: dst, tag: tag}
		q.recvs = append(q.recvs, x)
	}
	x.recvPosted = true
	x.recvPost = post
	if x.sendPosted {
		w.completeMatch(x)
	}
	return x
}

// completeMatch computes the transfer's completion times once both
// sides have posted, and wakes any parties blocked on them. Timing
// model:
//
//	eager:      arrival = inject(sendPost) + ser + λ   (precomputed)
//	            cS = sendPost + ser                    (precomputed)
//	rendezvous: start = max(sendPost, recvPost)
//	            arrival = inject(start) + ser + λ₁
//	            cS = cR + λ₂                           (ack path, Eq. 1)
//	cR = max(recvPost, arrival)
func (w *World) completeMatch(x *xfer) {
	ser := w.m.XferCycles(x.bytes)
	if x.eager {
		x.cR = max64(x.recvPost, x.eagerArrival)
		x.cRValid = true
	} else {
		start := max64(x.sendPost, x.recvPost)
		injStart := w.m.InjectAt(int(x.src), start, ser)
		arrival := injStart + ser + w.m.PathLatency(int(x.src), int(x.dst))
		x.cR = max64(x.recvPost, arrival)
		x.cRValid = true
		x.cS = x.cR + w.m.PathLatency(int(x.dst), int(x.src))
		x.cSValid = true
	}
	w.stats.Messages++
	w.stats.BytesSent += x.bytes
	if x.sendWaiter != nil {
		w.unblock(x.sendWaiter, x.cS)
		x.sendWaiter = nil
	}
	if x.recvWaiter != nil {
		w.unblock(x.recvWaiter, x.cR)
		x.recvWaiter = nil
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// wildRecv is a posted-but-unmatched AnySource receive.
type wildRecv struct {
	recvPost   int64
	recvWaiter *proc
	adopted    *xfer // set when a send arrives and adopts this receive
}

// RecvAny is MPI_Recv with MPI_ANY_SOURCE: it blocks until a message
// with the given tag arrives from any rank, returning the resolved
// source (communicator rank) and payload size. The resolved source is
// recorded in the trace, so the graph builder never sees a wildcard
// (the PMPI convention: the tracer reads the source from MPI_Status).
// Matching precedence is deterministic: pending sends are adopted in
// posting order; a specific receive already posted for the same
// (source, tag) takes precedence over a later wildcard.
func (c *Comm) RecvAny(tag int) (src int, bytes int64) {
	r := c.rank
	p := r.proc
	w := r.world
	t0 := p.now
	p.now += w.m.RecvOverhead() + w.m.OpNoise(p.rank)
	p.state = stateReady
	w.yield(p)
	wk := wildKey{comm: c.id, dst: int32(p.rank), tag: int32(tag)}
	// Adopt the oldest still-unmatched pending send to us with this tag.
	var x *xfer
	sends := w.wildSends[wk]
	for len(sends) > 0 {
		cand := sends[0]
		sends = sends[1:]
		if !cand.recvPosted { // not claimed by a specific receive
			x = cand
			break
		}
	}
	if len(sends) == 0 {
		delete(w.wildSends, wk)
	} else {
		w.wildSends[wk] = sends
	}
	if x != nil {
		// Remove from its specific queue and complete.
		k := chanKey{comm: c.id, src: x.src, dst: int32(p.rank), tag: int32(tag)}
		w.dropUnmatched(k, x)
		x.recvPosted = true
		x.recvPost = p.now
		w.completeMatch(x)
		if x.cR > p.now {
			p.now = x.cR
		}
	} else {
		// Park until any matching send arrives.
		wr := &wildRecv{recvPost: p.now, recvWaiter: p}
		w.wildRecvs[wk] = append(w.wildRecvs[wk], wr)
		w.block(p, fmt.Sprintf("recv(src=ANY tag=%d)", tag))
		x = wr.adopted
		if x == nil {
			panic("mpi: wildcard receive resumed without a transfer")
		}
	}
	r.record(trace.Record{Kind: trace.KindRecv, Begin: t0, End: p.now,
		Peer: x.src, Tag: int32(tag), Bytes: x.bytes, Comm: c.id, Root: trace.NoRank})
	// Translate the world rank back to a communicator rank.
	for i, wr := range c.members {
		if wr == int(x.src) {
			return i, x.bytes
		}
	}
	panic(fmt.Sprintf("mpi: wildcard source %d not in communicator", x.src))
}

// dropUnmatched removes an xfer from a specific queue's pending lists.
func (w *World) dropUnmatched(k chanKey, x *xfer) {
	q := w.queues[k]
	if q == nil {
		return
	}
	for i, cand := range q.sends {
		if cand == x {
			q.sends = append(q.sends[:i], q.sends[i+1:]...)
			break
		}
	}
	for i, cand := range q.recvs {
		if cand == x {
			q.recvs = append(q.recvs[:i], q.recvs[i+1:]...)
			break
		}
	}
}

// sendMode selects the blocking-send flavour (paper §3.1.1: "the MPI
// specification provides three forms of blocking send").
type sendMode uint8

const (
	sendDefault  sendMode = iota // machine policy (EagerLimit)
	sendSync                     // always rendezvous (MPI_Ssend)
	sendBuffered                 // always eager/buffered (MPI_Bsend)
)

// Send is MPI_Send: it blocks until the transfer completes (eager
// sends complete after the local copy; rendezvous sends wait for the
// receiver's acknowledgment, the paper's Eq. 1 ack path). Whether a
// given size is eager follows the machine's EagerLimit.
func (c *Comm) Send(dst, tag int, bytes int64) { c.sendMode(dst, tag, bytes, sendDefault) }

// Ssend is MPI_Ssend: a synchronous send that always waits for the
// receiver regardless of the machine's eager threshold.
func (c *Comm) Ssend(dst, tag int, bytes int64) { c.sendMode(dst, tag, bytes, sendSync) }

// Bsend is MPI_Bsend: a buffered send that always completes after the
// local copy, regardless of size.
func (c *Comm) Bsend(dst, tag int, bytes int64) { c.sendMode(dst, tag, bytes, sendBuffered) }

func (c *Comm) sendMode(dst, tag int, bytes int64, mode sendMode) {
	if bytes < 0 {
		panic("mpi: negative message size")
	}
	r := c.rank
	p := r.proc
	w := r.world
	dstW := int32(c.WorldRank(dst))
	if int(dstW) == p.rank {
		panic("mpi: send to self is not supported")
	}
	t0 := p.now
	p.now += w.m.SendOverhead() + w.m.OpNoise(p.rank)
	p.state = stateReady
	w.yield(p)
	x := w.postSendMode(c.id, int32(p.rank), dstW, int32(tag), bytes, p.now, mode)
	if !x.cSValid {
		x.sendWaiter = p
		w.block(p, fmt.Sprintf("send(dst=%d tag=%d)", dstW, tag))
	} else if x.cS > p.now {
		p.now = x.cS
	}
	r.record(trace.Record{Kind: trace.KindSend, Begin: t0, End: p.now,
		Peer: dstW, Tag: int32(tag), Bytes: bytes, Comm: c.id, Root: trace.NoRank})
}

// Recv is MPI_Recv: it blocks until a matching message has arrived,
// and returns the payload size.
func (c *Comm) Recv(src, tag int) int64 {
	r := c.rank
	p := r.proc
	w := r.world
	srcW := int32(c.WorldRank(src))
	if int(srcW) == p.rank {
		panic("mpi: receive from self is not supported")
	}
	t0 := p.now
	p.now += w.m.RecvOverhead() + w.m.OpNoise(p.rank)
	p.state = stateReady
	w.yield(p)
	x := w.postRecv(c.id, srcW, int32(p.rank), int32(tag), p.now)
	if !x.cRValid {
		x.recvWaiter = p
		w.block(p, fmt.Sprintf("recv(src=%d tag=%d)", srcW, tag))
	} else if x.cR > p.now {
		p.now = x.cR
	}
	r.record(trace.Record{Kind: trace.KindRecv, Begin: t0, End: p.now,
		Peer: srcW, Tag: int32(tag), Bytes: x.bytes, Comm: c.id, Root: trace.NoRank})
	return x.bytes
}

// Isend is MPI_Isend: it returns immediately with a request handle.
func (c *Comm) Isend(dst, tag int, bytes int64) *Request {
	if bytes < 0 {
		panic("mpi: negative message size")
	}
	r := c.rank
	p := r.proc
	w := r.world
	dstW := int32(c.WorldRank(dst))
	if int(dstW) == p.rank {
		panic("mpi: send to self is not supported")
	}
	t0 := p.now
	p.now += w.m.SendOverhead() + w.m.OpNoise(p.rank)
	p.state = stateReady
	w.yield(p)
	x := w.postSend(c.id, int32(p.rank), dstW, int32(tag), bytes, p.now)
	p.reqSeq++
	req := &Request{id: p.reqSeq, owner: p.rank, isSend: true, x: x}
	r.record(trace.Record{Kind: trace.KindIsend, Begin: t0, End: p.now,
		Peer: dstW, Tag: int32(tag), Bytes: bytes, Req: req.id, Comm: c.id, Root: trace.NoRank})
	return req
}

// Irecv is MPI_Irecv: it returns immediately with a request handle.
func (c *Comm) Irecv(src, tag int) *Request {
	r := c.rank
	p := r.proc
	w := r.world
	srcW := int32(c.WorldRank(src))
	if int(srcW) == p.rank {
		panic("mpi: receive from self is not supported")
	}
	t0 := p.now
	p.now += w.m.RecvOverhead() + w.m.OpNoise(p.rank)
	p.state = stateReady
	w.yield(p)
	x := w.postRecv(c.id, srcW, int32(p.rank), int32(tag), p.now)
	p.reqSeq++
	req := &Request{id: p.reqSeq, owner: p.rank, isSend: false, x: x}
	r.record(trace.Record{Kind: trace.KindIrecv, Begin: t0, End: p.now,
		Peer: srcW, Tag: int32(tag), Bytes: x.bytes, Req: req.id, Comm: c.id, Root: trace.NoRank})
	return req
}

// Sendrecv posts a nonblocking send and receive, then completes both.
// It returns the received payload size.
func (c *Comm) Sendrecv(dst, sendTag int, bytes int64, src, recvTag int) int64 {
	sreq := c.Isend(dst, sendTag, bytes)
	rreq := c.Irecv(src, recvTag)
	c.rank.Waitall(sreq, rreq)
	return rreq.Bytes()
}
