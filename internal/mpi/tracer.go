package mpi

import "mpgraph/internal/trace"

// recordSink abstracts where a rank's trace records go: an in-memory
// trace, a buffered file writer, or nowhere.
type recordSink interface {
	add(trace.Record) error
}

// tracer is the PMPI-style tracing layer of one rank: every MPI call
// in rank.go/comm.go produces exactly one record (plus one per request
// for Waitall), stamped with local-clock times.
type tracer struct {
	world *World
	rank  int
	sink  recordSink
}

func (t *tracer) add(rec trace.Record) error { return t.sink.add(rec) }

// memSink collects records in memory.
type memSink struct {
	mem *trace.MemTrace
}

func (s *memSink) add(rec trace.Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	s.mem.Records = append(s.mem.Records, rec)
	return nil
}

// writerSink forwards records to a buffered trace.Writer.
type writerSink struct {
	w *trace.Writer
}

func (s writerSink) add(rec trace.Record) error { return s.w.Record(rec) }

// nopSink discards records (tracing disabled).
type nopSink struct{}

func (nopSink) add(trace.Record) error { return nil }
