package mpi

import (
	"fmt"
	"sort"

	"mpgraph/internal/trace"
)

// collKey identifies one collective operation instance: all members of
// a communicator issue their n-th collective against the same key.
type collKey struct {
	comm int32
	seq  int64
}

// collSync gathers the members of one collective operation. The last
// rank to arrive computes everyone's completion time and wakes the
// rest.
type collSync struct {
	kind     trace.Kind
	bytes    int64
	rootIdx  int
	arrivals []int64
	arrived  []bool
	procs    []*proc
	count    int

	// Comm_split payload.
	colors, keys []int
	splitOut     []splitResult
}

type splitResult struct {
	id      int32
	members []int
	myIdx   int
}

// collective runs one collective operation on the communicator and
// returns this rank's communicator index within it (used by Split).
func (c *Comm) collective(kind trace.Kind, bytes int64, rootIdx int, color, key int) *collSync {
	r := c.rank
	p := r.proc
	w := r.world
	t0 := p.now
	p.now += w.m.SendOverhead() + w.m.OpNoise(p.rank)
	p.state = stateReady
	w.yield(p)

	c.seq++
	ck := collKey{comm: c.id, seq: c.seq}
	cs := w.colls[ck]
	if cs == nil {
		n := len(c.members)
		cs = &collSync{
			kind: kind, bytes: bytes, rootIdx: rootIdx,
			arrivals: make([]int64, n),
			arrived:  make([]bool, n),
			procs:    make([]*proc, n),
			colors:   make([]int, n),
			keys:     make([]int, n),
		}
		w.colls[ck] = cs
	}
	if cs.kind != kind || cs.rootIdx != rootIdx {
		panic(fmt.Sprintf("mpi: collective mismatch on comm %d seq %d: %s/root=%d vs %s/root=%d",
			c.id, c.seq, cs.kind, cs.rootIdx, kind, rootIdx))
	}
	idx := c.myIdx
	if cs.arrived[idx] {
		panic(fmt.Sprintf("mpi: rank %d arrived twice at comm %d seq %d", p.rank, c.id, c.seq))
	}
	cs.arrived[idx] = true
	cs.arrivals[idx] = p.now
	cs.colors[idx] = color
	cs.keys[idx] = key
	cs.count++

	if cs.count == len(c.members) {
		times := w.collTimes(kind, c.members, cs.arrivals, cs.bytes, cs.rootIdx)
		if kind == trace.KindCommSplit {
			cs.splitOut = w.computeSplit(c.members, cs.colors, cs.keys)
		}
		for i, q := range cs.procs {
			if q != nil {
				w.unblock(q, times[i])
			}
		}
		if times[idx] > p.now {
			p.now = times[idx]
		}
		delete(w.colls, ck)
		w.stats.Collectives++
	} else {
		cs.procs[idx] = p
		w.block(p, fmt.Sprintf("%s(comm=%d seq=%d)", kind, c.id, c.seq))
	}

	rootWorld := trace.NoRank
	if kind.IsRooted() {
		rootWorld = int32(c.members[rootIdx])
	}
	r.record(trace.Record{
		Kind: kind, Begin: t0, End: p.now,
		Peer: trace.NoRank, Bytes: bytes, Comm: c.id, Seq: c.seq,
		Root: rootWorld, CommSize: int32(len(c.members)),
	})
	return cs
}

func (c *Comm) checkRoot(root int) int {
	if root < 0 || root >= len(c.members) {
		panic(fmt.Sprintf("mpi: root %d outside communicator of size %d", root, len(c.members)))
	}
	return root
}

// Barrier is MPI_Barrier.
func (c *Comm) Barrier() { c.collective(trace.KindBarrier, 0, 0, 0, 0) }

// Bcast is MPI_Bcast of bytes from root (a communicator rank).
func (c *Comm) Bcast(root int, bytes int64) {
	c.collective(trace.KindBcast, bytes, c.checkRoot(root), 0, 0)
}

// Reduce is MPI_Reduce of bytes per rank to root.
func (c *Comm) Reduce(root int, bytes int64) {
	c.collective(trace.KindReduce, bytes, c.checkRoot(root), 0, 0)
}

// Allreduce is MPI_Allreduce of bytes per rank.
func (c *Comm) Allreduce(bytes int64) { c.collective(trace.KindAllreduce, bytes, 0, 0, 0) }

// Gather is MPI_Gather of bytes per rank to root.
func (c *Comm) Gather(root int, bytes int64) {
	c.collective(trace.KindGather, bytes, c.checkRoot(root), 0, 0)
}

// Allgather is MPI_Allgather of bytes per rank.
func (c *Comm) Allgather(bytes int64) { c.collective(trace.KindAllgather, bytes, 0, 0, 0) }

// Scatter is MPI_Scatter of bytes per rank from root.
func (c *Comm) Scatter(root int, bytes int64) {
	c.collective(trace.KindScatter, bytes, c.checkRoot(root), 0, 0)
}

// Alltoall is MPI_Alltoall of bytes per pair.
func (c *Comm) Alltoall(bytes int64) { c.collective(trace.KindAlltoall, bytes, 0, 0, 0) }

// Scan is MPI_Scan: inclusive prefix reduction of bytes per rank.
func (c *Comm) Scan(bytes int64) { c.collective(trace.KindScan, bytes, 0, 0, 0) }

// Split is MPI_Comm_split: members with equal non-negative color form
// a new communicator, ordered by (key, world rank). A negative color
// returns nil (MPI_UNDEFINED). Split synchronizes the parent
// communicator and appears in traces as a KindCommSplit collective.
func (c *Comm) Split(color, key int) *Comm {
	cs := c.collective(trace.KindCommSplit, 0, 0, color, key)
	out := cs.splitOut[c.myIdx]
	if out.members == nil {
		return nil
	}
	return &Comm{rank: c.rank, id: out.id, members: out.members, myIdx: out.myIdx}
}

// Dup is MPI_Comm_dup: a new communicator with the same group.
func (c *Comm) Dup() *Comm { return c.Split(0, c.myIdx) }

// computeSplit assigns new communicator ids and membership for a
// Comm_split. Groups are processed in ascending color order so that id
// assignment is deterministic.
func (w *World) computeSplit(members []int, colors, keys []int) []splitResult {
	out := make([]splitResult, len(members))
	groups := map[int][]int{} // color -> member indices
	var colorList []int
	for i, col := range colors {
		if col < 0 {
			continue
		}
		if _, ok := groups[col]; !ok {
			colorList = append(colorList, col)
		}
		groups[col] = append(groups[col], i)
	}
	sort.Ints(colorList)
	for _, col := range colorList {
		idxs := groups[col]
		// Order by (key, world rank).
		sort.Slice(idxs, func(a, b int) bool {
			ia, ib := idxs[a], idxs[b]
			if keys[ia] != keys[ib] {
				return keys[ia] < keys[ib]
			}
			return members[ia] < members[ib]
		})
		id := w.nextCommID
		w.nextCommID++
		world := make([]int, len(idxs))
		for pos, i := range idxs {
			world[pos] = members[i]
		}
		for pos, i := range idxs {
			out[i] = splitResult{id: id, members: world, myIdx: pos}
		}
	}
	return out
}

// collTimes computes each member's completion time for a collective,
// given arrival times (indexed by communicator rank). The algorithms
// mirror standard MPI implementations: dissemination for the
// symmetric collectives, binomial trees for the rooted ones, linear
// exchange for gather/scatter. Every message samples latency, every
// member samples one unit of OS noise at entry; this is the machine's
// "ground truth" against which the graph model's log(p) approximation
// (paper Fig. 4) is an approximation.
func (w *World) collTimes(kind trace.Kind, members []int, arrivals []int64, bytes int64, rootIdx int) []int64 {
	p := len(members)
	T := make([]int64, p)
	for i := range T {
		T[i] = arrivals[i] + w.m.OpNoise(members[i])
	}
	if p == 1 {
		return T
	}
	switch kind {
	case trace.KindBarrier, trace.KindCommSplit:
		w.dissemination(T, members, func(int) int64 { return 0 })
	case trace.KindAllreduce:
		w.dissemination(T, members, func(int) int64 { return bytes })
	case trace.KindAllgather:
		w.dissemination(T, members, func(round int) int64 { return bytes << uint(round) })
	case trace.KindAlltoall:
		rounds := ceilLog2(p)
		per := bytes * int64(p) / int64(rounds)
		w.dissemination(T, members, func(int) int64 { return per })
	case trace.KindBcast:
		w.binomialDown(T, members, rootIdx, bytes)
	case trace.KindReduce:
		w.binomialUp(T, members, rootIdx, bytes)
	case trace.KindGather:
		w.linearGather(T, members, rootIdx, bytes)
	case trace.KindScatter:
		w.linearScatter(T, members, rootIdx, bytes)
	case trace.KindScan:
		w.prefixChain(T, members, bytes)
	default:
		panic(fmt.Sprintf("mpi: collTimes for non-collective kind %s", kind))
	}
	return T
}

// ceilLog2 returns ceil(log2(p)) for p >= 1.
func ceilLog2(p int) int {
	r := 0
	for (1 << uint(r)) < p {
		r++
	}
	if r == 0 {
		r = 1
	}
	return r
}

// dissemination runs ceil(log2 p) synchronized exchange rounds: in
// round j, member i receives from member (i - 2^j) mod p.
func (w *World) dissemination(T []int64, members []int, roundBytes func(round int) int64) {
	p := len(T)
	rounds := ceilLog2(p)
	next := make([]int64, p)
	for j := 0; j < rounds; j++ {
		step := 1 << uint(j)
		ser := w.m.XferCycles(roundBytes(j))
		for i := 0; i < p; i++ {
			src := (i - step%p + p) % p
			arr := T[src] + ser + w.m.PathLatency(members[src], members[i])
			next[i] = max64(T[i], arr)
		}
		copy(T, next)
	}
}

// binomialDown is a binomial broadcast tree rooted at rootIdx.
func (w *World) binomialDown(T []int64, members []int, rootIdx int, bytes int64) {
	p := len(T)
	R := relabel(T, rootIdx)
	ser := w.m.XferCycles(bytes)
	for j := 0; (1 << uint(j)) < p; j++ {
		step := 1 << uint(j)
		for rel := 0; rel < step && rel+step < p; rel++ {
			child := rel + step
			s0 := R[rel]
			R[rel] = s0 + ser // sender occupied while serializing
			arr := s0 + ser + w.m.PathLatency(members[(rel+rootIdx)%p], members[(child+rootIdx)%p])
			R[child] = max64(R[child], arr)
		}
	}
	unrelabel(T, R, rootIdx)
}

// binomialUp is a binomial reduction tree toward rootIdx. Non-root
// members complete after injecting their contribution; ancestors wait
// for their children.
func (w *World) binomialUp(T []int64, members []int, rootIdx int, bytes int64) {
	p := len(T)
	R := relabel(T, rootIdx)
	ser := w.m.XferCycles(bytes)
	for j := 0; (1 << uint(j)) < p; j++ {
		step := 1 << uint(j)
		for rel := step; rel < p; rel += step << 1 {
			parent := rel - step
			s0 := R[rel]
			R[rel] = s0 + ser
			arr := s0 + ser + w.m.PathLatency(members[(rel+rootIdx)%p], members[(parent+rootIdx)%p])
			R[parent] = max64(R[parent], arr)
		}
	}
	unrelabel(T, R, rootIdx)
}

// linearGather has every non-root inject its block to the root, which
// drains arrivals in communicator-rank order.
func (w *World) linearGather(T []int64, members []int, rootIdx int, bytes int64) {
	p := len(T)
	ser := w.m.XferCycles(bytes)
	acc := T[rootIdx]
	for i := 0; i < p; i++ {
		if i == rootIdx {
			continue
		}
		arr := T[i] + w.m.PathLatency(members[i], members[rootIdx])
		acc = max64(acc, arr) + ser
		T[i] += ser // sender done after injection
	}
	T[rootIdx] = acc
}

// linearScatter has the root inject one block per member in
// communicator-rank order.
func (w *World) linearScatter(T []int64, members []int, rootIdx int, bytes int64) {
	p := len(T)
	ser := w.m.XferCycles(bytes)
	s := T[rootIdx]
	for i := 0; i < p; i++ {
		if i == rootIdx {
			continue
		}
		s += ser
		arr := s + w.m.PathLatency(members[rootIdx], members[i])
		T[i] = max64(T[i], arr)
	}
	T[rootIdx] = s
}

// prefixChain times MPI_Scan as the canonical linear prefix chain:
// member i completes after receiving member i−1's partial result.
func (w *World) prefixChain(T []int64, members []int, bytes int64) {
	ser := w.m.XferCycles(bytes)
	for i := 1; i < len(T); i++ {
		arr := T[i-1] + ser + w.m.PathLatency(members[i-1], members[i])
		T[i] = max64(T[i], arr)
	}
}

// relabel returns T reindexed so the root is position 0.
func relabel(T []int64, rootIdx int) []int64 {
	p := len(T)
	R := make([]int64, p)
	for i := 0; i < p; i++ {
		R[i] = T[(i+rootIdx)%p]
	}
	return R
}

// unrelabel writes R (root at 0) back into T (root at rootIdx).
func unrelabel(T, R []int64, rootIdx int) {
	p := len(T)
	for i := 0; i < p; i++ {
		T[(i+rootIdx)%p] = R[i]
	}
}
