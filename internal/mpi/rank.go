package mpi

import (
	"fmt"

	"mpgraph/internal/trace"
)

// Rank is a program's handle to the runtime: rank identity, virtual
// compute time, and the MPI-1 operation subset. All point-to-point and
// collective methods are available both on the world communicator
// (directly on Rank, for convenience) and on sub-communicators via
// Comm. Methods panic on misuse (invalid ranks, double waits); model
// misuse is a program bug, not a runtime condition.
type Rank struct {
	world *World
	proc  *proc
	comm  *Comm // world communicator
}

// init records the MPI_Init event and builds the world communicator.
func (r *Rank) init() {
	members := make([]int, r.world.m.NRanks())
	for i := range members {
		members[i] = i
	}
	r.comm = &Comm{rank: r, id: 0, members: members, myIdx: r.proc.rank}
	t0 := r.proc.now
	r.proc.now += r.world.m.RecvOverhead() + r.world.m.OpNoise(r.proc.rank)
	r.record(trace.Record{Kind: trace.KindInit, Begin: t0, End: r.proc.now,
		Peer: trace.NoRank, Root: trace.NoRank})
	r.proc.state = stateReady
	r.world.yield(r.proc)
}

// finalize records the MPI_Finalize event; it does not synchronize
// (the paper reads per-rank completion off each rank's final node).
func (r *Rank) finalize() {
	t0 := r.proc.now
	r.proc.now += r.world.m.RecvOverhead() + r.world.m.OpNoise(r.proc.rank)
	r.record(trace.Record{Kind: trace.KindFinalize, Begin: t0, End: r.proc.now,
		Peer: trace.NoRank, Root: trace.NoRank})
}

// record stamps a trace record with local-clock times and emits it.
func (r *Rank) record(rec trace.Record) {
	m := r.world.m
	rec.Begin = m.LocalClock(r.proc.rank, rec.Begin)
	rec.End = m.LocalClock(r.proc.rank, rec.End)
	if err := r.proc.tracer.add(rec); err != nil {
		panic(fmt.Sprintf("mpi: rank %d trace write failed: %v", r.proc.rank, err))
	}
	r.world.stats.Events++
}

// Rank returns this process's world rank.
func (r *Rank) Rank() int { return r.proc.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.m.NRanks() }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.comm }

// Now returns the rank's current global virtual time. Programs may use
// it for instrumentation; it never appears in traces (traces carry the
// distorted local clock).
func (r *Rank) Now() int64 { return r.proc.now }

// Compute advances virtual time by w cycles of local work plus
// whatever OS noise the machine model injects over that interval.
func (r *Rank) Compute(w int64) {
	if w < 0 {
		panic("mpi: negative compute time")
	}
	p := r.proc
	scaled := r.world.m.ScaleCompute(p.rank, w)
	p.now += scaled + r.world.m.ComputeNoise(p.rank, scaled)
	p.state = stateReady
	r.world.yield(p)
}

// Marker records a zero-duration region annotation with the given id.
func (r *Rank) Marker(region int32) {
	r.record(trace.Record{Kind: trace.KindMarker, Begin: r.proc.now, End: r.proc.now,
		Tag: region, Peer: trace.NoRank, Root: trace.NoRank})
}

// Send is MPI_Send on the world communicator.
func (r *Rank) Send(dst, tag int, bytes int64) { r.comm.Send(dst, tag, bytes) }

// Ssend is MPI_Ssend (always synchronous) on the world communicator.
func (r *Rank) Ssend(dst, tag int, bytes int64) { r.comm.Ssend(dst, tag, bytes) }

// Bsend is MPI_Bsend (always buffered) on the world communicator.
func (r *Rank) Bsend(dst, tag int, bytes int64) { r.comm.Bsend(dst, tag, bytes) }

// Recv is MPI_Recv on the world communicator; it returns the received
// payload size.
func (r *Rank) Recv(src, tag int) int64 { return r.comm.Recv(src, tag) }

// RecvAny is MPI_Recv with MPI_ANY_SOURCE on the world communicator;
// it returns the resolved source rank and payload size.
func (r *Rank) RecvAny(tag int) (src int, bytes int64) { return r.comm.RecvAny(tag) }

// Isend is MPI_Isend on the world communicator.
func (r *Rank) Isend(dst, tag int, bytes int64) *Request { return r.comm.Isend(dst, tag, bytes) }

// Irecv is MPI_Irecv on the world communicator.
func (r *Rank) Irecv(src, tag int) *Request { return r.comm.Irecv(src, tag) }

// Wait is MPI_Wait.
func (r *Rank) Wait(req *Request) { r.waitInner([]*Request{req}, trace.KindWait) }

// Waitall is MPI_Waitall.
func (r *Rank) Waitall(reqs ...*Request) { r.waitInner(reqs, trace.KindWaitall) }

// Sendrecv is MPI_Sendrecv on the world communicator: a combined
// nonblocking send and receive completed together. It returns the
// received payload size.
func (r *Rank) Sendrecv(dst, sendTag int, bytes int64, src, recvTag int) int64 {
	return r.comm.Sendrecv(dst, sendTag, bytes, src, recvTag)
}

// Barrier is MPI_Barrier on the world communicator.
func (r *Rank) Barrier() { r.comm.Barrier() }

// Bcast is MPI_Bcast on the world communicator.
func (r *Rank) Bcast(root int, bytes int64) { r.comm.Bcast(root, bytes) }

// Reduce is MPI_Reduce on the world communicator.
func (r *Rank) Reduce(root int, bytes int64) { r.comm.Reduce(root, bytes) }

// Allreduce is MPI_Allreduce on the world communicator.
func (r *Rank) Allreduce(bytes int64) { r.comm.Allreduce(bytes) }

// Gather is MPI_Gather on the world communicator.
func (r *Rank) Gather(root int, bytes int64) { r.comm.Gather(root, bytes) }

// Allgather is MPI_Allgather on the world communicator.
func (r *Rank) Allgather(bytes int64) { r.comm.Allgather(bytes) }

// Scatter is MPI_Scatter on the world communicator.
func (r *Rank) Scatter(root int, bytes int64) { r.comm.Scatter(root, bytes) }

// Alltoall is MPI_Alltoall on the world communicator.
func (r *Rank) Alltoall(bytes int64) { r.comm.Alltoall(bytes) }

// Scan is MPI_Scan on the world communicator.
func (r *Rank) Scan(bytes int64) { r.comm.Scan(bytes) }

// waitInner implements Wait and Waitall: requests are completed in
// order, all records share the call's begin time, one record is
// emitted per request (the convention the tracing layer uses for
// Waitall; see trace.KindWaitall).
func (r *Rank) waitInner(reqs []*Request, kind trace.Kind) {
	if len(reqs) == 0 {
		return
	}
	p := r.proc
	w := r.world
	t0 := p.now
	p.now += w.m.RecvOverhead() + w.m.OpNoise(p.rank)
	p.state = stateReady
	w.yield(p)
	for _, req := range reqs {
		if req == nil {
			panic("mpi: wait on nil request")
		}
		if req.waited {
			panic("mpi: request waited on twice")
		}
		if req.owner != p.rank {
			panic("mpi: wait on another rank's request")
		}
		req.waited = true
		c, ok := req.completion()
		if !ok {
			// Not yet matched: park until the peer posts.
			req.x.setWaiter(req.isSend, p)
			w.block(p, fmt.Sprintf("wait(%s tag=%d peer=%d)", sideName(req.isSend), req.x.tag, req.peerWorld()))
			// Resumed by the matcher with now >= completion.
		} else if c > p.now {
			p.now = c
		}
	}
	// One record per request (the Waitall convention, see
	// trace.KindWaitall): the first carries the call's interval, the
	// rest are zero-duration at the completion time so that per-rank
	// records never overlap.
	begin := t0
	for _, req := range reqs {
		r.record(trace.Record{
			Kind: kind, Begin: begin, End: p.now,
			Peer: trace.NoRank, Root: trace.NoRank, Req: req.id,
		})
		begin = p.now
	}
}

func sideName(isSend bool) string {
	if isSend {
		return "send"
	}
	return "recv"
}

// Request is a nonblocking operation handle returned by Isend/Irecv.
type Request struct {
	id     uint64
	owner  int
	isSend bool
	x      *xfer
	waited bool
}

// completion returns the operation's completion time if it is known.
func (q *Request) completion() (int64, bool) {
	if q.isSend {
		return q.x.cS, q.x.cSValid
	}
	return q.x.cR, q.x.cRValid
}

// Bytes returns the transfer's payload size; for receive requests it is
// only meaningful after Wait.
func (q *Request) Bytes() int64 { return q.x.bytes }

func (q *Request) peerWorld() int32 {
	if q.isSend {
		return q.x.dst
	}
	return q.x.src
}
