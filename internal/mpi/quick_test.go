package mpi

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/trace"
)

// randomProgram builds a deterministic-but-arbitrary program shape
// from a seed: a mix of ring exchanges, nonblocking bursts, and
// collectives.
func randomProgram(seed uint64, iters int) Program {
	return func(r *Rank) error {
		rng := dist.NewRNG(seed + uint64(r.Rank())*0) // same plan on every rank
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() + r.Size() - 1) % r.Size()
		for i := 0; i < iters; i++ {
			switch rng.Intn(4) {
			case 0:
				r.Compute(int64(100 + rng.Intn(5000)))
			case 1:
				if r.Size() > 1 {
					r.Sendrecv(next, i, int64(1+rng.Intn(2048)), prev, i)
				}
			case 2:
				var reqs []*Request
				if r.Size() > 1 {
					reqs = append(reqs,
						r.Isend(next, 100+i, 64),
						r.Irecv(prev, 100+i))
					r.Compute(int64(rng.Intn(2000)))
					r.Waitall(reqs...)
				}
			case 3:
				switch rng.Intn(4) {
				case 0:
					r.Barrier()
				case 1:
					r.Allreduce(8)
				case 2:
					r.Bcast(0, 256)
				case 3:
					r.Scan(8)
				}
			}
		}
		return nil
	}
}

// TestQuickRuntimeDeterministicAndValid: arbitrary program shapes on
// arbitrary machines always (a) complete, (b) are bit-identical across
// two runs, and (c) produce individually valid, per-rank-ordered
// records.
func TestQuickRuntimeDeterministicAndValid(t *testing.T) {
	f := func(seed uint64) bool {
		rng := dist.NewRNG(seed)
		n := 1 + rng.Intn(6)
		iters := 1 + rng.Intn(8)
		mcfg := machine.Config{
			NRanks:  n,
			Seed:    seed,
			Noise:   dist.Exponential{MeanValue: float64(rng.Intn(200))},
			Latency: dist.Uniform{Low: 100, High: 2000},
		}
		if rng.Intn(2) == 0 {
			mcfg.EagerLimit = int64(rng.Intn(4096))
		}
		if rng.Intn(2) == 0 {
			mcfg.Topology = machine.Topology(rng.Intn(4))
		}
		prog := randomProgram(seed, iters)
		a, err := Run(Config{Machine: mcfg}, prog)
		if err != nil {
			t.Logf("seed %#x: %v", seed, err)
			return false
		}
		b, err := Run(Config{Machine: mcfg}, prog)
		if err != nil {
			return false
		}
		if a.Makespan != b.Makespan {
			t.Logf("seed %#x: makespans differ", seed)
			return false
		}
		for rank := range a.Traces {
			if !reflect.DeepEqual(a.Traces[rank].Records, b.Traces[rank].Records) {
				t.Logf("seed %#x: rank %d traces differ", seed, rank)
				return false
			}
			prevEnd := int64(-1 << 62)
			for _, rec := range a.Traces[rank].Records {
				if rec.Validate() != nil || rec.Begin < prevEnd {
					t.Logf("seed %#x: invalid/overlapping record %+v", seed, rec)
					return false
				}
				prevEnd = rec.End
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTraceRoundTripThroughCodec: every runtime-produced trace
// survives a binary encode/decode round trip byte-exactly.
func TestQuickTraceRoundTripThroughCodec(t *testing.T) {
	f := func(seed uint64) bool {
		rng := dist.NewRNG(seed)
		n := 2 + rng.Intn(3)
		res, err := Run(Config{Machine: machine.Config{
			NRanks:      n,
			Seed:        seed,
			ClockOffset: dist.Uniform{Low: 0, High: 1e15}, // stress varints
		}}, randomProgram(seed, 4))
		if err != nil {
			return false
		}
		for _, m := range res.Traces {
			var buf bytes.Buffer
			enc, err := trace.NewEncoder(&buf, m.Hdr)
			if err != nil {
				return false
			}
			for _, rec := range m.Records {
				if err := enc.Encode(rec); err != nil {
					return false
				}
			}
			if err := enc.Close(); err != nil {
				return false
			}
			rd, err := trace.NewReader(&buf)
			if err != nil {
				return false
			}
			back, err := trace.ReadAll(rd)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(back.Records, m.Records) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
