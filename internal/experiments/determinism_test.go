package experiments

import (
	"strings"
	"testing"
)

// renderOutcome folds everything an experiment reports — the rendered
// table, verdict, pass flag, and extra artifacts — into one comparable
// string.
func renderOutcome(t *testing.T, out *Outcome) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(out.ID + "\n" + out.Title + "\n")
	if out.Table != nil {
		if err := out.Table.Render(&b); err != nil {
			t.Fatal(err)
		}
	}
	b.WriteString(out.Verdict + "\n")
	if out.Pass {
		b.WriteString("PASS\n")
	} else {
		b.WriteString("FAIL\n")
	}
	b.WriteString(out.Extra)
	return b.String()
}

// TestExperimentsDeterministicAcrossWorkers runs every registered
// experiment serially and with an 8-worker pool across several seeds:
// rendered tables, verdicts, and artifacts must be byte-identical,
// because every replay's randomness derives from (seed, grid point),
// never from scheduling.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			for _, seed := range []uint64{1, 7, 2006} {
				serial, err := e.Run(Config{Quick: true, Seed: seed, Workers: 1})
				if err != nil {
					t.Fatalf("seed=%d serial: %v", seed, err)
				}
				par, err := e.Run(Config{Quick: true, Seed: seed, Workers: 8})
				if err != nil {
					t.Fatalf("seed=%d parallel: %v", seed, err)
				}
				a, b := renderOutcome(t, serial), renderOutcome(t, par)
				if a != b {
					t.Fatalf("seed=%d: workers=1 and workers=8 diverge:\n--- serial\n%s\n--- parallel\n%s",
						seed, a, b)
				}
			}
		})
	}
}
