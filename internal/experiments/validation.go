package experiments

import (
	"fmt"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/report"
	"mpgraph/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "validation",
		Title: "prediction accuracy: analyzer vs re-execution",
		Run:   runValidation,
	})
}

// runValidation closes the loop the paper leaves open: how accurate is
// the graph-traversal prediction? For each workload we
//
//  1. trace it on a quiet machine,
//  2. predict the makespan under added per-message latency Δ by
//     analyzing that trace with a constant message delta, and
//  3. actually re-execute the workload on a machine whose latency is
//     raised by Δ,
//
// then compare predicted vs re-executed makespans. The substitution is
// exact only for fully synchronous codes (the analyzer perturbs the
// traced schedule; a real rerun may also change overlap), so the
// accuracy band is the finding, not a failure.
func runValidation(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "validation", Title: "prediction accuracy"}
	const latDelta = 3000
	const noiseMean = 300
	names := []string{"tokenring", "pipeline", "cg", "stencil1d", "bsp"}
	n := cfg.pick(16, 6)
	iters := cfg.pick(10, 4)

	tbl := report.NewTable(
		fmt.Sprintf("predicted vs re-executed makespan (%d ranks)", n),
		"workload", "perturbation", "predicted", "re-executed", "error")
	pass := true
	for _, name := range names {
		for _, leg := range []struct {
			label  string
			model  *core.Model
			mutate func(*machine.Config)
		}{
			{
				label: fmt.Sprintf("+%d cyc/message", latDelta),
				model: &core.Model{MsgLatency: dist.Constant{C: latDelta}},
				mutate: func(m *machine.Config) {
					m.Latency = dist.Constant{C: 1000 + latDelta} // default is constant 1000
				},
			},
			{
				label: fmt.Sprintf("exp(%d) noise/op", noiseMean),
				model: &core.Model{Seed: cfg.Seed, OSNoise: dist.Exponential{MeanValue: noiseMean}},
				mutate: func(m *machine.Config) {
					m.Noise = dist.Exponential{MeanValue: noiseMean}
				},
			},
		} {
			prog, err := workloads.BuildByName(name, workloads.Options{Iterations: iters})
			if err != nil {
				return nil, err
			}
			quietCfg := machine.Config{NRanks: n, Seed: cfg.Seed}
			quietRun, err := mpi.Run(mpi.Config{Machine: quietCfg}, prog)
			if err != nil {
				return nil, err
			}
			set, err := quietRun.TraceSet()
			if err != nil {
				return nil, err
			}
			res, err := core.Analyze(set, leg.model, core.Options{})
			if err != nil {
				return nil, err
			}
			predicted := float64(quietRun.Makespan) + res.MakespanDelay

			noisyCfg := quietCfg
			leg.mutate(&noisyCfg)
			noisyRun, err := mpi.Run(mpi.Config{Machine: noisyCfg, DisableTracing: true}, prog)
			if err != nil {
				return nil, err
			}
			actual := float64(noisyRun.Makespan)
			errPct := 100 * (predicted - actual) / actual
			tbl.AddRow(name, leg.label, predicted, actual,
				fmt.Sprintf("%+.2f%%", errPct))
			if errPct < -20 || errPct > 20 {
				pass = false
			}
		}
	}
	out.Table = tbl
	out.Pass = pass
	out.Verdict = "trace-driven prediction within ±20% of re-execution for both latency and noise what-ifs"
	return out, nil
}
