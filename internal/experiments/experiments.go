// Package experiments codifies the paper's evaluation as runnable,
// named experiments: each figure, the Section 6.1 sweep, and the
// ablations listed in DESIGN.md. Every experiment produces the table
// (or series) the paper reports plus a one-line verdict comparing the
// measured shape against the paper's expectation. The mpg-experiments
// command and the benchmark harness are thin wrappers over this
// package, so the numbers in EXPERIMENTS.md are regenerable from one
// place.
package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"mpgraph/internal/baseline"
	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/microbench"
	"mpgraph/internal/mpi"
	"mpgraph/internal/obsv"
	"mpgraph/internal/parallel"
	"mpgraph/internal/report"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// Config scales the experiments: Quick shrinks rank counts and
// iteration counts for fast smoke runs (tests); the default is the
// paper-faithful size.
type Config struct {
	// Quick runs reduced problem sizes.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the replay worker pool used by the grid-shaped
	// experiments; zero or negative means GOMAXPROCS. Tables and
	// verdicts are identical for every pool size: every replay is
	// seeded from Config.Seed and the grid point alone, and rows are
	// assembled in grid order after collection.
	Workers int
	// ReplayWorkers, when > 1, runs the batch-replayed model grids
	// through the wavefront-slab parallel engine instead
	// (core.ReplayParallel at ReplayWorkers cores per model, models
	// fanned out over max(1, Workers/ReplayWorkers) outer tasks so the
	// total budget stays ~Workers). Byte-identical for every setting —
	// the engines are pinned equivalent — it only moves the
	// parallelism between the grid and the single replay.
	ReplayWorkers int
	// Metrics, when non-nil, receives pool observability from every
	// grid fan-out (out-of-band; tables and verdicts are unchanged).
	Metrics *obsv.Registry
}

func (c Config) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// pool returns the fan-out options for grid experiments.
func (c Config) pool() parallel.Options {
	return parallel.Options{Workers: c.Workers, Metrics: c.Metrics}
}

// replayGrid propagates a grid of models over one compiled program.
// The default engine is the lane-batched walk (one task, K models per
// tape pass); with ReplayWorkers > 1 each model instead runs through
// the wavefront-slab parallel engine, with the Workers budget split
// between outer model fan-out and intra-replay slab workers. Both
// paths are byte-identical — the equivalence suites pin it — so the
// switch changes scheduling only.
func (c Config) replayGrid(prog *core.Compiled, models []*core.Model) ([]*core.Result, error) {
	if c.ReplayWorkers <= 1 {
		return core.ReplayBatch(prog, models, core.BatchOptions{
			Options: core.Options{Metrics: c.Metrics},
		})
	}
	outer := c.Workers
	if outer <= 0 {
		outer = runtime.GOMAXPROCS(0)
	}
	if outer = outer / c.ReplayWorkers; outer < 1 {
		outer = 1
	}
	popts := parallel.Options{Workers: outer, Metrics: c.Metrics}
	return parallel.Map(len(models), popts, func(i int) (*core.Result, error) {
		return core.ReplayParallel(prog, models[i], core.Options{Metrics: c.Metrics}, c.ReplayWorkers)
	})
}

// Outcome is one experiment's result.
type Outcome struct {
	// ID is the experiment identifier ("fig2", "sec6.1", ...).
	ID string
	// Title is the experiment's one-line description.
	Title string
	// Table holds the rows the paper's evaluation would report.
	Table *report.Table
	// Verdict is the measured-vs-expected comparison.
	Verdict string
	// Pass reports whether the measured shape matches the paper's.
	Pass bool
	// Extra holds free-form artifacts (e.g. the Fig. 5 DOT text).
	Extra string
}

// Experiment is a named, runnable reproduction unit.
type Experiment struct {
	// ID is the registry key ("fig2", "sec6.1", "ablC", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Run executes it.
	Run func(Config) (*Outcome, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in definition order (figures first, then
// the quantitative experiment, then ablations).
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Get finds an experiment by id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// traceWorkload runs a workload on a quiet machine and returns the set.
func traceWorkload(name string, nranks int, opts workloads.Options, seed uint64) (*trace.Set, error) {
	prog, err := workloads.BuildByName(name, opts)
	if err != nil {
		return nil, err
	}
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: nranks, Seed: seed}}, prog)
	if err != nil {
		return nil, err
	}
	return res.TraceSet()
}

func init() {
	register(Experiment{ID: "fig2", Title: "Eq. 1: blocking send/receive pair", Run: runFig2})
	register(Experiment{ID: "fig3", Title: "Eq. 2: nonblocking pair with waits", Run: runFig3})
	register(Experiment{ID: "fig4", Title: "collective models: compact hub vs explicit pattern", Run: runFig4})
	register(Experiment{ID: "fig5", Title: "message-passing graph DOT export", Run: runFig5})
	register(Experiment{ID: "sec6.1", Title: "token-ring perturbation sweep (128 ranks)", Run: runSec61})
	register(Experiment{ID: "ablA", Title: "streaming window boundedness", Run: runAblA})
	register(Experiment{ID: "ablB", Title: "empirical vs fitted parameterization", Run: runAblB})
	register(Experiment{ID: "ablC", Title: "graph traversal vs Dimemas-style DES replay", Run: runAblC})
	register(Experiment{ID: "ablD", Title: "propagation modes: additive vs anchored", Run: runAblD})
	register(Experiment{ID: "ext-neg", Title: "negative perturbations (§7 future work)", Run: runExtNeg})
	register(Experiment{ID: "ext-straggler", Title: "single noisy node with delay attribution", Run: runExtStraggler})
	register(Experiment{ID: "ext-topo", Title: "topology placement sensitivity", Run: runExtTopo})
}

// runFig2 sweeps the Eq. 1 deltas on an isolated blocking pair and
// cross-checks the engine against the closed form.
func runFig2(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "fig2", Title: "Eq. 1: blocking send/receive pair"}
	tbl := report.NewTable("perturbed blocking pair: engine vs closed form (delays in cycles)",
		"δ_os", "δ_λ", "δ_t(d)", "sender-delay", "receiver-delay", "closed-form-sender", "closed-form-receiver")
	type combo struct{ osn, lat float64 }
	var grid []combo
	for _, osn := range []float64{0, 50, 500} {
		for _, lat := range []float64{0, 100, 1000} {
			grid = append(grid, combo{osn, lat})
		}
	}
	type fig2Row struct{ gotS, gotR, wantS, wantR float64 }
	rows, err := parallel.Map(len(grid), cfg.pool(), func(i int) (fig2Row, error) {
		defer cfg.Metrics.SpanStart("experiment_cell")()
		osn, lat := grid[i].osn, grid[i].lat
		pb := lat / 10
		set, err := pairSet()
		if err != nil {
			return fig2Row{}, err
		}
		model := &core.Model{
			OSNoise:    dist.Constant{C: osn},
			MsgLatency: dist.Constant{C: lat},
			PerByte:    dist.Constant{C: pb / 1000}, // scaled by 1000-byte payload
		}
		res, err := core.Analyze(set, model, core.Options{})
		if err != nil {
			return fig2Row{}, err
		}
		dSE, dRE := core.Eq1Additive(2*osn, 2*osn, osn, osn, lat, pb, lat)
		return fig2Row{
			gotS:  res.Ranks[0].FinalDelay - 2*osn,
			gotR:  res.Ranks[1].FinalDelay - 2*osn,
			wantS: dSE,
			wantR: dRE,
		}, nil
	})
	if err != nil {
		return nil, unwrapTask(err)
	}
	maxErr := 0.0
	for i, row := range rows {
		tbl.AddRow(grid[i].osn, grid[i].lat, grid[i].lat/10, row.gotS, row.gotR, row.wantS, row.wantR)
		if d := abs(row.gotS - row.wantS); d > maxErr {
			maxErr = d
		}
		if d := abs(row.gotR - row.wantR); d > maxErr {
			maxErr = d
		}
	}
	out.Table = tbl
	out.Pass = maxErr < 1e-9
	out.Verdict = fmt.Sprintf("max |engine − closed form| = %.2g cycles (expect 0)", maxErr)
	return out, nil
}

// pairSet builds the canonical 2-rank blocking pair trace.
func pairSet() (*trace.Set, error) {
	mk := func(rank int, kind trace.Kind, peer int32) []trace.Record {
		ev := trace.Record{Kind: kind, Begin: 100, End: 300, Peer: peer, Tag: 5,
			Bytes: 1000, Root: trace.NoRank}
		return []trace.Record{
			{Kind: trace.KindInit, Begin: 0, End: 10, Peer: trace.NoRank, Root: trace.NoRank},
			ev,
			{Kind: trace.KindFinalize, Begin: 400, End: 400, Peer: trace.NoRank, Root: trace.NoRank},
		}
	}
	return trace.SetFromMem([]*trace.MemTrace{
		{Hdr: trace.Header{Rank: 0, NRanks: 2}, Records: mk(0, trace.KindSend, 1)},
		{Hdr: trace.Header{Rank: 1, NRanks: 2}, Records: mk(1, trace.KindRecv, 0)},
	})
}

// runFig3 verifies the immediate-return property and the wait-landing
// of deltas on a nonblocking stencil.
func runFig3(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "fig3", Title: "Eq. 2: nonblocking pair with waits"}
	n := cfg.pick(32, 6)
	iters := cfg.pick(20, 4)
	tbl := report.NewTable("nonblocking stencil under message deltas",
		"δ_λ", "max-delay", "isend/irecv end perturbation")
	pass := true
	for _, lat := range []float64{0, 1000, 10000} {
		set, err := traceWorkload("stencil1d", n, workloads.Options{Iterations: iters}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := core.Analyze(set, &core.Model{MsgLatency: dist.Constant{C: lat}}, core.Options{})
		if err != nil {
			return nil, err
		}
		// With only message deltas, Isend/Irecv end subevents carry no
		// perturbation by Eq. 2; total delay is entirely due to waits,
		// so with lat=0 the delay must be 0.
		tbl.AddRow(lat, res.MaxFinalDelay, "0 (Eq. 2 immediate return)")
		if lat == 0 && res.MaxFinalDelay != 0 {
			pass = false
		}
		if lat > 0 && res.MaxFinalDelay <= 0 {
			pass = false
		}
	}
	out.Table = tbl
	out.Pass = pass
	out.Verdict = "delays land on waits only; zero deltas give zero delay"
	return out, nil
}

// runFig4 compares the compact hub against the explicit pattern over
// world size.
func runFig4(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "fig4", Title: "collective models"}
	sizes := []int{8, 32, 128}
	if cfg.Quick {
		sizes = []int{4, 8}
	}
	tbl := report.NewTable("allreduce-heavy workload: predicted max delay by collective model",
		"p", "approx (Fig.4 hub)", "explicit pattern", "approx/explicit")
	modes := []core.CollectiveMode{core.CollectiveApprox, core.CollectiveExplicit}
	delays, err := parallel.Map(len(sizes)*len(modes), cfg.pool(), func(t int) (float64, error) {
		defer cfg.Metrics.SpanStart("experiment_cell")()
		p, mode := sizes[t/len(modes)], modes[t%len(modes)]
		set, err := traceWorkload("cg", p, workloads.Options{Iterations: cfg.pick(10, 3)}, cfg.Seed)
		if err != nil {
			return 0, err
		}
		model := &core.Model{
			OSNoise:     dist.Exponential{MeanValue: 50},
			MsgLatency:  dist.Exponential{MeanValue: 200},
			Collectives: mode,
			Seed:        cfg.Seed,
		}
		res, err := core.Analyze(set, model, core.Options{})
		if err != nil {
			return 0, err
		}
		return res.MaxFinalDelay, nil
	})
	if err != nil {
		return nil, unwrapTask(err)
	}
	pass := true
	for i, p := range sizes {
		approx, explicit := delays[i*len(modes)], delays[i*len(modes)+1]
		ratio := approx / explicit
		tbl.AddRow(p, approx, explicit, fmt.Sprintf("%.2f", ratio))
		if ratio < 1.0 {
			pass = false // the hub model must be the pessimistic bound
		}
	}
	out.Table = tbl
	out.Pass = pass
	out.Verdict = "compact hub ≥ explicit pattern at every p (the paper's pessimistic approximation)"
	return out, nil
}

// runFig5 regenerates the DOT artifact.
func runFig5(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "fig5", Title: "graph DOT export"}
	set, err := traceWorkload("tokenring", 3, workloads.Options{Iterations: 2}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	g, err := core.BuildGraph(set)
	if err != nil {
		return nil, err
	}
	kinds := g.EdgesByKind()
	tbl := report.NewTable("graph structure (3-rank, 2-traversal ring)",
		"nodes", "local-edges", "message-edges", "collective-edges")
	tbl.AddRow(g.NumNodes(), kinds[core.EdgeLocal], kinds[core.EdgeMessage], kinds[core.EdgeCollective])
	out.Table = tbl
	out.Extra = g.DOT("fig5: blocking token ring")
	// Message edges come in pairs (data+ack): 2 per transfer, 6
	// transfers.
	out.Pass = kinds[core.EdgeMessage] == 12
	out.Verdict = fmt.Sprintf("message edges = %d (want 12 = data+ack per transfer)", kinds[core.EdgeMessage])
	return out, nil
}

// runSec61 is the paper's quantitative experiment.
func runSec61(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "sec6.1", Title: "token-ring perturbation sweep"}
	ranks := cfg.pick(128, 16)
	traversals := cfg.pick(10, 5)
	tbl := report.NewTable(
		fmt.Sprintf("§6.1: %d ranks, %d traversals, constant per-message perturbation", ranks, traversals),
		"perturbation", "max-delay", "mean-delay", "delay/(traversals·p)")
	var xs []float64
	for c := 0.0; c <= 700; c += 100 {
		xs = append(xs, c)
	}
	// The whole grid analyzes the same deterministic trace under
	// different models: trace and compile once, then propagate every
	// point as one lane of a single batched tape walk (each lane is
	// byte-identical to a standalone per-point replay).
	set, err := traceWorkload("tokenring", ranks, workloads.Options{Iterations: traversals}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(set, core.Options{})
	if err != nil {
		return nil, err
	}
	models := make([]*core.Model, len(xs))
	for i := range xs {
		models[i] = &core.Model{MsgLatency: dist.Constant{C: xs[i]}}
	}
	results, err := cfg.replayGrid(prog, models)
	if err != nil {
		return nil, err
	}
	var ys []float64
	for i, res := range results {
		ys = append(ys, res.MaxFinalDelay)
		tbl.AddRow(xs[i], res.MaxFinalDelay, res.MeanFinalDelay,
			res.MaxFinalDelay/float64(traversals*ranks))
	}
	fit := dist.FitLinear(xs, ys)
	expected := float64(traversals * ranks)
	out.Table = tbl
	out.Pass = fit.R2 > 0.999 && fit.Slope >= expected && fit.Slope <= 1.05*expected
	out.Verdict = fmt.Sprintf("slope %.1f vs paper's traversals×p = %.0f (R²=%.6f)",
		fit.Slope, expected, fit.R2)
	return out, nil
}

// runAblA demonstrates window boundedness across trace lengths.
func runAblA(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "ablA", Title: "streaming window boundedness"}
	n := cfg.pick(16, 6)
	tbl := report.NewTable("window high-water vs trace length (stencil1d)",
		"iterations", "events", "window-high-water")
	lengths := []int{10, 40, 160}
	results, err := parallel.Map(len(lengths), cfg.pool(), func(i int) (*core.Result, error) {
		defer cfg.Metrics.SpanStart("experiment_cell")()
		set, err := traceWorkload("stencil1d", n, workloads.Options{Iterations: lengths[i]}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return core.Analyze(set, &core.Model{}, core.Options{Burst: 8})
	})
	if err != nil {
		return nil, unwrapTask(err)
	}
	pass := true
	var prev int
	for i, res := range results {
		tbl.AddRow(lengths[i], res.Events, res.WindowHighWater)
		if prev > 0 && res.WindowHighWater > 4*prev {
			pass = false // window must not grow with trace length
		}
		prev = res.WindowHighWater
	}
	out.Table = tbl
	out.Pass = pass
	out.Verdict = "window is bounded independent of trace length (§4.2/§6 streaming claim)"
	return out, nil
}

// runAblB compares the two Section 5 parameterization paths.
func runAblB(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "ablB", Title: "empirical vs fitted parameterization"}
	samples, err := microbench.FTQ(machine.Config{
		NRanks: 2, Seed: cfg.Seed, Noise: dist.Exponential{MeanValue: 150},
	}, 10_000, cfg.pick(2000, 300))
	if err != nil {
		return nil, err
	}
	empirical := dist.NewEmpirical(samples)
	fitted, err := dist.FitExponential(samples)
	if err != nil {
		return nil, err
	}
	n := cfg.pick(16, 4)
	iters := cfg.pick(10, 3)
	tbl := report.NewTable("CG delay prediction by parameterization path",
		"path", "distribution", "max-delay")
	var delays []float64
	for _, tc := range []struct {
		name string
		d    dist.Distribution
	}{
		{"empirical", empirical},
		{"fitted-exponential", fitted},
	} {
		set, err := traceWorkload("cg", n, workloads.Options{Iterations: iters}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := core.Analyze(set, &core.Model{Seed: cfg.Seed, OSNoise: tc.d}, core.Options{})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(tc.name, tc.d.String(), res.MaxFinalDelay)
		delays = append(delays, res.MaxFinalDelay)
	}
	ratio := delays[0] / delays[1]
	out.Table = tbl
	out.Pass = ratio > 0.8 && ratio < 1.25
	out.Verdict = fmt.Sprintf("empirical/fitted prediction ratio = %.3f (paths agree when the family is right)", ratio)
	return out, nil
}

// runAblC compares the analyzer with the DES replayer.
func runAblC(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "ablC", Title: "graph traversal vs DES replay"}
	n := cfg.pick(64, 8)
	iters := cfg.pick(10, 4)
	const delta = 2000
	tbl := report.NewTable("same latency bump through both analyzers (token ring)",
		"method", "makespan-growth", "notes")

	set, err := traceWorkload("tokenring", n, workloads.Options{Iterations: iters}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	graphRes, err := core.Analyze(set, &core.Model{MsgLatency: dist.Constant{C: delta}}, core.Options{})
	if err != nil {
		return nil, err
	}
	tbl.AddRow("graph traversal", graphRes.MakespanDelay, "streams, no clock sync needed")

	base, err := replayOf(cfg, n, iters, 1000)
	if err != nil {
		return nil, err
	}
	bumped, err := replayOf(cfg, n, iters, 1000+delta)
	if err != nil {
		return nil, err
	}
	growth := float64(bumped.Makespan - base.Makespan)
	tbl.AddRow("DES replay (Dimemas-style)", growth,
		fmt.Sprintf("%d heap events, needs aligned clocks", bumped.EventsFired))

	ratio := graphRes.MakespanDelay / growth
	out.Table = tbl
	out.Pass = ratio > 0.5 && ratio < 2.0
	out.Verdict = fmt.Sprintf("growth ratio graph/DES = %.3f (agreement on a synchronous code)", ratio)
	return out, nil
}

func replayOf(cfg Config, n, iters int, lat int64) (*baseline.Result, error) {
	set, err := traceWorkload("tokenring", n, workloads.Options{Iterations: iters}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return baseline.Replay(set, baseline.Params{Latency: lat, BytesPerCycle: 1})
}

// runAblD compares the additive and anchored propagation modes.
func runAblD(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "ablD", Title: "propagation modes"}
	n := cfg.pick(16, 4)
	iters := cfg.pick(10, 3)
	tbl := report.NewTable("additive vs anchored propagation (token ring, constant latency delta)",
		"δ per message", "additive max-delay", "anchored max-delay")
	deltas := []float64{10, 100, 1000, 10000}
	modes := []core.PropagationMode{core.PropagationAdditive, core.PropagationAnchored}
	// One deterministic trace serves the whole (delta × mode) grid:
	// compile once, then propagate every cell as one lane of a single
	// batched tape walk (the batch engine supports heterogeneous lane
	// models, so the additive and anchored cells share the walk).
	set, err := traceWorkload("tokenring", n, workloads.Options{Iterations: iters}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(set, core.Options{})
	if err != nil {
		return nil, err
	}
	grid := make([]*core.Model, len(deltas)*len(modes))
	for t := range grid {
		grid[t] = &core.Model{
			MsgLatency:  dist.Constant{C: deltas[t/len(modes)]},
			Propagation: modes[t%len(modes)],
		}
	}
	results, err := cfg.replayGrid(prog, grid)
	if err != nil {
		return nil, err
	}
	delays := make([]float64, len(grid))
	for t, res := range results {
		delays[t] = res.MaxFinalDelay
	}
	pass := true
	for i, c := range deltas {
		additive, anchored := delays[i*len(modes)], delays[i*len(modes)+1]
		tbl.AddRow(c, additive, anchored)
		if anchored > additive {
			pass = false // anchored absorbs into durations, never exceeds additive
		}
	}
	out.Table = tbl
	out.Pass = pass
	out.Verdict = "anchored ≤ additive everywhere; small deltas vanish into traced durations"
	return out, nil
}

// runExtNeg explores the §7 "less noise" what-if.
func runExtNeg(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "ext-neg", Title: "negative perturbations"}
	n := cfg.pick(16, 4)
	iters := cfg.pick(10, 3)
	mcfg := machine.Config{NRanks: n, Seed: cfg.Seed, Noise: dist.Exponential{MeanValue: 300}}
	tbl := report.NewTable("traced on a noisy platform; modeled with noise removed",
		"removed/edge", "mean-delay", "order-violations-clamped")
	removed := []float64{0, 100, 200, 400}
	results, err := parallel.Map(len(removed), cfg.pool(), func(i int) (*core.Result, error) {
		defer cfg.Metrics.SpanStart("experiment_cell")()
		prog, err := workloads.BuildByName("cg", workloads.Options{Iterations: iters})
		if err != nil {
			return nil, err
		}
		run, err := mpi.Run(mpi.Config{Machine: mcfg}, prog)
		if err != nil {
			return nil, err
		}
		set, err := run.TraceSet()
		if err != nil {
			return nil, err
		}
		return core.Analyze(set, &core.Model{
			Seed:          cfg.Seed,
			OSNoise:       dist.Constant{C: -removed[i]},
			AllowNegative: true,
		}, core.Options{})
	})
	if err != nil {
		return nil, unwrapTask(err)
	}
	pass := true
	var prev float64 = 1
	for i, res := range results {
		tbl.AddRow(removed[i], res.MeanFinalDelay, res.OrderViolations)
		if res.MeanFinalDelay > prev {
			pass = false // more removed noise must not slow the run
		}
		prev = res.MeanFinalDelay
		if removed[i] == 0 && res.MeanFinalDelay != 0 {
			pass = false
		}
	}
	out.Table = tbl
	out.Pass = pass
	out.Verdict = "predicted runtime decreases monotonically as noise is removed; order preserved by clamping"
	return out, nil
}

// runExtStraggler is the "one bad node" study: all noise on a single
// rank, the analyzer's attribution (own vs remote noise) identifying
// it from every other rank's perspective.
func runExtStraggler(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "ext-straggler", Title: "single noisy node"}
	n := cfg.pick(16, 6)
	iters := cfg.pick(15, 4)
	noisy := n / 2
	perRank := make([]dist.Distribution, n)
	perRank[noisy] = dist.Exponential{MeanValue: 500}
	model := &core.Model{Seed: cfg.Seed, RankOSNoise: perRank}

	set, err := traceWorkload("cg", n, workloads.Options{Iterations: iters}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res, err := core.Analyze(set, model, core.Options{})
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("noise on rank %d only; per-rank delay attribution", noisy),
		"rank", "final-delay", "own-noise", "remote-noise")
	pass := true
	for rank, rr := range res.Ranks {
		tbl.AddRow(rank, rr.FinalDelay, rr.Attr.OwnNoise, rr.Attr.RemoteNoise)
		if rank == noisy && rr.Attr.OwnNoise <= 0 {
			pass = false
		}
		if rank != noisy && (rr.Attr.OwnNoise != 0 || rr.FinalDelay <= 0) {
			pass = false
		}
	}
	out.Table = tbl
	out.Pass = pass
	out.Verdict = fmt.Sprintf("every quiet rank's delay is 100%% remote noise; blame points at rank %d", noisy)
	return out, nil
}

// runExtTopo traces the same halo-exchange code on four interconnect
// topologies (per-pair latency scales with hop count) and compares
// traced makespans: the placement-sensitivity question the machine
// model's topology support exists for.
func runExtTopo(cfg Config) (*Outcome, error) {
	out := &Outcome{ID: "ext-topo", Title: "topology placement"}
	n := cfg.pick(16, 8)
	iters := cfg.pick(10, 3)
	tbl := report.NewTable(
		fmt.Sprintf("stencil2d on %d ranks: traced makespan per topology", n),
		"topology", "makespan", "vs-crossbar")
	topos := []machine.Topology{machine.TopoFull, machine.TopoRing,
		machine.TopoMesh2D, machine.TopoHypercube}
	spans, err := parallel.Map(len(topos), cfg.pool(), func(i int) (int64, error) {
		defer cfg.Metrics.SpanStart("experiment_cell")()
		// Built per task: concurrent runs must not share program state.
		prog, err := workloads.BuildByName("stencil2d", workloads.Options{Iterations: iters})
		if err != nil {
			return 0, err
		}
		run, err := mpi.Run(mpi.Config{
			Machine:        machine.Config{NRanks: n, Seed: cfg.Seed, Topology: topos[i]},
			DisableTracing: true,
		}, prog)
		if err != nil {
			return 0, err
		}
		return run.Makespan, nil
	})
	if err != nil {
		return nil, unwrapTask(err)
	}
	crossbar := spans[0] // topos[0] is TopoFull
	pass := true
	for i, topo := range topos {
		if i > 0 && spans[i] < crossbar {
			pass = false // multi-hop networks cannot beat the crossbar
		}
		tbl.AddRow(topo.String(), spans[i],
			fmt.Sprintf("%.2fx", float64(spans[i])/float64(crossbar)))
	}
	out.Table = tbl
	out.Pass = pass
	out.Verdict = "every multi-hop topology is at or above the crossbar; the gap is the placement cost"
	return out, nil
}

// unwrapTask strips the engine's task wrapper so experiment callers see
// the same error text the serial loops produced.
func unwrapTask(err error) error {
	if te, ok := err.(*parallel.TaskError); ok {
		return te.Err
	}
	return err
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sortIDs is a helper for deterministic listings in tools.
func sortIDs(ids []string) { sort.Strings(ids) }
