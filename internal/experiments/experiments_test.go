package experiments

import (
	"strings"
	"testing"
)

func TestRegistryOrder(t *testing.T) {
	ids := IDs()
	want := []string{"fig2", "fig3", "fig4", "fig5", "sec6.1",
		"ablA", "ablB", "ablC", "ablD", "ext-neg", "ext-straggler",
		"ext-topo", "validation"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("fig2"); !ok {
		t.Fatal("fig2 missing")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("phantom experiment found")
	}
}

// TestAllExperimentsPassQuick runs every experiment at quick scale and
// requires each to reproduce its paper shape. This is the repository's
// continuous reproduction check.
func TestAllExperimentsPassQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(Config{Quick: true, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if out.Table == nil || out.Table.NumRows() == 0 {
				t.Fatal("experiment produced no table")
			}
			if !out.Pass {
				t.Fatalf("shape check failed: %s", out.Verdict)
			}
			if out.Verdict == "" {
				t.Fatal("no verdict")
			}
		})
	}
}

func TestFig5ProducesDOT(t *testing.T) {
	e, _ := Get("fig5")
	out, err := e.Run(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Extra, "digraph") {
		t.Fatal("fig5 missing DOT artifact")
	}
}

// TestSec61FullScale runs the paper-faithful 128-rank experiment once
// (it takes well under a second).
func TestSec61FullScale(t *testing.T) {
	e, _ := Get("sec6.1")
	out, err := e.Run(Config{Seed: 2006})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass {
		t.Fatalf("full-scale §6.1 failed: %s", out.Verdict)
	}
	if !strings.Contains(out.Verdict, "1280") {
		t.Fatalf("verdict should reference the paper's 1280 expectation: %s", out.Verdict)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	e, _ := Get("fig4")
	a, err := e.Run(Config{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(Config{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != b.Verdict {
		t.Fatalf("nondeterministic experiment: %q vs %q", a.Verdict, b.Verdict)
	}
}
