package timeline

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/obsv"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// replayTimeline runs a deterministic workload through the compiled
// engine with interval recording on and returns the timeline plus the
// replay result.
func replayTimeline(t *testing.T, model *core.Model) (*Timeline, *core.Result) {
	t.Helper()
	dir := t.TempDir()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine:  machine.Config{NRanks: 4, Seed: 1},
		TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	set, closeFn, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	c, err := core.Compile(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tl := New(c.NRanks())
	res, err := core.ReplayCompiled(c, model, core.Options{
		RecordCritPath: true,
		Interval:       tl.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tl, res
}

func noisyModel() *core.Model {
	return &core.Model{
		Seed:       7,
		OSNoise:    dist.Exponential{MeanValue: 40},
		MsgLatency: dist.Exponential{MeanValue: 150},
	}
}

func TestCheckPassesOnRealReplay(t *testing.T) {
	tl, res := replayTimeline(t, noisyModel())
	if bad := tl.Check(res); len(bad) > 0 {
		t.Fatalf("exact decomposition violated:\n%s", strings.Join(bad, "\n"))
	}
	if len(tl.Flows) == 0 {
		t.Fatal("tokenring recorded no message flows")
	}
	var total float64
	for _, w := range tl.Waits {
		total += w.Total
	}
	if total <= 0 {
		t.Fatal("noisy replay recorded no waiting at all")
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(tl *Timeline)
		want string
	}{
		{"completion", func(tl *Timeline) {
			evs := tl.Ranks[0]
			evs[len(evs)-1].End += 0.5
		}, "track ends at"},
		{"wait total", func(tl *Timeline) {
			tl.Waits[1].Total += 1
		}, "wait total"},
		{"event order", func(tl *Timeline) {
			tl.Ranks[2][0].Index = 99
		}, "out of order"},
		{"dangling flow", func(tl *Timeline) {
			tl.Flows[0].SrcEvent = 1 << 30
		}, "dangling endpoint"},
		{"negative wait", func(tl *Timeline) {
			e := &tl.Ranks[0][0]
			e.Wait = -1
			e.State = core.WaitLateSender
		}, "negative wait"},
		{"wait without state", func(tl *Timeline) {
			// Find an event with a real wait and erase its state.
			for r := range tl.Ranks {
				for i := range tl.Ranks[r] {
					if tl.Ranks[r][i].Wait > 0 {
						tl.Ranks[r][i].State = core.WaitNone
						return
					}
				}
			}
		}, "without a wait state"},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			tl, res := replayTimeline(t, noisyModel())
			tc.mut(tl)
			bad := tl.Check(res)
			if len(bad) == 0 {
				t.Fatal("corruption not detected")
			}
			found := false
			for _, m := range bad {
				if strings.Contains(m, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no message mentions %q:\n%s", tc.want, strings.Join(bad, "\n"))
			}
		})
	}
}

func TestRecordClampsAndBuckets(t *testing.T) {
	tl := New(1)
	tl.Record(core.IntervalPoint{Rank: 0, Event: 0, OrigBegin: 0, OrigEnd: 10, PeerRank: -1})
	// Starts nominally at 8 but the previous interval ends at 10: the
	// start clamps up, and a wait larger than the interval clamps to it.
	tl.Record(core.IntervalPoint{
		Rank: 0, Event: 1, OrigBegin: 8, OrigEnd: 14, EndDelay: 6,
		Wait: 100, State: core.WaitLateSender, PeerRank: 2, PeerEvent: 5,
	})
	evs := tl.Ranks[0]
	if evs[1].Start != 10 {
		t.Errorf("start not clamped to previous end: %g", evs[1].Start)
	}
	if evs[1].WaitStart != evs[1].Start {
		t.Errorf("oversized wait not clamped to interval start: %g", evs[1].WaitStart)
	}
	if evs[1].End != 20 {
		t.Errorf("end perturbed by clamping: %g", evs[1].End)
	}
	w := tl.Waits[0]
	if w.LateSender != 100 || w.Total != 100 || w.LateReceiver != 0 || w.Collective != 0 {
		t.Errorf("wait buckets = %+v", w)
	}
	if len(tl.Flows) != 1 || tl.Flows[0] != (Flow{SrcRank: 2, SrcEvent: 5, DstRank: 0, DstEvent: 1}) {
		t.Errorf("flows = %+v", tl.Flows)
	}
}

func TestParseRanks(t *testing.T) {
	cases := []struct {
		spec string
		n    int
		want []int
		err  bool
	}{
		{"", 8, nil, false},
		{"all", 8, nil, false},
		{"3", 8, []int{3}, false},
		{"0-2,5", 8, []int{0, 1, 2, 5}, false},
		{"5,0-2,1", 8, []int{0, 1, 2, 5}, false},
		{"2-0", 8, nil, true},
		{"7", 4, nil, true},
		{"x", 8, nil, true},
		{"1-x", 8, nil, true},
	}
	for _, tc := range cases {
		got, err := ParseRanks(tc.spec, tc.n)
		if tc.err != (err != nil) {
			t.Errorf("ParseRanks(%q, %d) err = %v", tc.spec, tc.n, err)
			continue
		}
		if !tc.err && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseRanks(%q, %d) = %v, want %v", tc.spec, tc.n, got, tc.want)
		}
	}
}

func TestWindowMetrics(t *testing.T) {
	tl := New(2)
	// Rank 0: pure compute on [0, 10] (init is not a communication
	// kind and carries no wait).
	tl.Record(core.IntervalPoint{Rank: 0, Kind: uint8(trace.KindInit), OrigEnd: 10, PeerRank: -1})
	// Rank 1: computes [0, 5], then waits [5, 10] on a late sender.
	tl.Record(core.IntervalPoint{Rank: 1, Kind: uint8(trace.KindInit), OrigEnd: 5, PeerRank: -1})
	tl.Record(core.IntervalPoint{
		Rank: 1, Event: 1, Kind: uint8(trace.KindRecv), OrigBegin: 5, OrigEnd: 5,
		EndDelay: 5, Wait: 5, State: core.WaitLateSender, PeerRank: -1,
	})
	wins, w0, wsize, err := tl.WindowMetrics(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 1 || w0 != 0 || wsize != 10 {
		t.Fatalf("windows = %d, origin %g, width %g", len(wins), w0, wsize)
	}
	m := wins[0]
	// compute: rank 0 contributes 10, rank 1 contributes 5 → PE 15/20.
	if math.Abs(m.ParallelEfficiency-0.75) > 1e-12 {
		t.Errorf("parallel efficiency = %g, want 0.75", m.ParallelEfficiency)
	}
	// communication: rank 1's 5-cycle wait → 5/20.
	if math.Abs(m.CommFraction-0.25) > 1e-12 {
		t.Errorf("comm fraction = %g, want 0.25", m.CommFraction)
	}
	// load balance: mean(10,5)/max(10,5) = 0.75.
	if math.Abs(m.LoadBalance-0.75) > 1e-12 {
		t.Errorf("load balance = %g, want 0.75", m.LoadBalance)
	}
}

func TestWindowMetricsEmptyTimeline(t *testing.T) {
	tl := New(0)
	wins, _, _, err := tl.WindowMetrics(0)
	if err != nil || wins != nil {
		t.Fatalf("empty timeline: wins=%v err=%v", wins, err)
	}
}

func TestWindowMetricsTooManyWindows(t *testing.T) {
	tl := New(1)
	tl.Record(core.IntervalPoint{Rank: 0, OrigEnd: 1 << 40, PeerRank: -1})
	if _, _, _, err := tl.WindowMetrics(0.0001); err == nil {
		t.Fatal("absurd window count accepted")
	}
}

func TestWriteJSONDeterministicAndValid(t *testing.T) {
	tl, res := replayTimeline(t, noisyModel())
	opts := ExportOptions{Window: 500, CritPath: res.CritPath}
	var a, b bytes.Buffer
	if err := tl.WriteJSON(&a, opts); err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteJSON(&b, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export is not deterministic")
	}
	if msgs := Validate(a.Bytes()); len(msgs) > 0 {
		t.Fatalf("export fails its own validator:\n%s", strings.Join(msgs, "\n"))
	}
	s := a.String()
	for _, want := range []string{`"cat":"dataflow"`, `"cat":"critpath"`, `"parallel_efficiency"`, `"comm_fraction"`, `"load_balance"`} {
		if !strings.Contains(s, want) {
			t.Errorf("export missing %s", want)
		}
	}
}

func TestWriteJSONRankFilter(t *testing.T) {
	tl, res := replayTimeline(t, noisyModel())
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf, ExportOptions{Ranks: []int{1, 2}, CritPath: res.CritPath}); err != nil {
		t.Fatal(err)
	}
	if msgs := Validate(buf.Bytes()); len(msgs) > 0 {
		t.Fatalf("filtered export invalid:\n%s", strings.Join(msgs, "\n"))
	}
	s := buf.String()
	if strings.Contains(s, `"rank 0"`) || strings.Contains(s, `"rank 3"`) {
		t.Fatal("filtered-out rank exported")
	}
	if !strings.Contains(s, `"rank 1"`) || !strings.Contains(s, `"rank 2"`) {
		t.Fatal("selected ranks missing")
	}
}

func TestWriteSpansJSON(t *testing.T) {
	sb := obsv.NewSpanBuffer(16)
	// Two overlapping spans need two lanes; the third reuses lane 0.
	sb.Record("compile", 0, 1000)
	sb.Record("replay", 500, 2000)
	sb.Record("replay", 2500, 3000)
	var buf bytes.Buffer
	if err := WriteSpansJSON(&buf, sb.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if msgs := Validate(buf.Bytes()); len(msgs) > 0 {
		t.Fatalf("span export invalid:\n%s", strings.Join(msgs, "\n"))
	}
	s := buf.String()
	if !strings.Contains(s, `"lane 0"`) || !strings.Contains(s, `"lane 1"`) {
		t.Fatalf("greedy lane packing wrong:\n%s", s)
	}
	if strings.Contains(s, `"lane 2"`) {
		t.Fatalf("third span did not reuse a free lane:\n%s", s)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"garbage", `not json`, "does not parse"},
		{"no events", `{}`, "no traceEvents"},
		{"unbalanced E", `{"traceEvents":[{"ph":"E","ts":1,"pid":1,"tid":0}]}`, "no open B"},
		{"unclosed B", `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0}]}`, "unclosed"},
		{"backward slice", `{"traceEvents":[{"name":"x","ph":"B","ts":5,"pid":1,"tid":0},{"ph":"E","ts":1,"pid":1,"tid":0}]}`, "before it begins"},
		{"begin regression", `{"traceEvents":[{"name":"x","ph":"B","ts":5,"pid":1,"tid":0},{"ph":"E","ts":6,"pid":1,"tid":0},{"name":"y","ph":"B","ts":2,"pid":1,"tid":0},{"ph":"E","ts":9,"pid":1,"tid":0}]}`, "before previous begin"},
		{"orphan flow", `{"traceEvents":[{"name":"m","cat":"d","ph":"f","ts":1,"pid":1,"tid":0,"id":1}]}`, "no start"},
		{"unfinished flow", `{"traceEvents":[{"name":"m","cat":"d","ph":"s","ts":1,"pid":1,"tid":0,"id":1}]}`, "never finishes"},
		{"backward flow", `{"traceEvents":[{"name":"m","cat":"d","ph":"s","ts":5,"pid":1,"tid":0,"id":1},{"name":"m","cat":"d","ph":"f","ts":1,"pid":1,"tid":1,"id":1}]}`, "before it starts"},
		{"bad counter", `{"traceEvents":[{"name":"c","ph":"C","ts":1,"pid":1}]}`, "no numeric args"},
		{"unknown phase", `{"traceEvents":[{"ph":"Q","ts":1,"pid":1}]}`, "unknown phase"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msgs := Validate([]byte(tc.doc))
			if len(msgs) == 0 {
				t.Fatal("violation not detected")
			}
			found := false
			for _, m := range msgs {
				if strings.Contains(m, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no message mentions %q:\n%s", tc.want, strings.Join(msgs, "\n"))
			}
		})
	}
	good := `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0},{"ph":"E","ts":2,"pid":1,"tid":0}]}`
	if msgs := Validate([]byte(good)); len(msgs) > 0 {
		t.Fatalf("clean document rejected: %v", msgs)
	}
}

// TestStreamingAndCompiledAgree pins engine independence at the
// package level: the same model replayed through Analyze and
// ReplayCompiled must produce identical timelines, not just identical
// Results.
func TestStreamingAndCompiledAgree(t *testing.T) {
	tl, res := replayTimeline(t, noisyModel())

	dir := t.TempDir()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine:  machine.Config{NRanks: 4, Seed: 1},
		TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	set, closeFn, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	stl := New(4)
	sres, err := core.Analyze(set, noisyModel(), core.Options{
		RecordCritPath: true,
		Interval:       stl.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad := stl.Check(sres); len(bad) > 0 {
		t.Fatalf("streaming decomposition violated:\n%s", strings.Join(bad, "\n"))
	}
	var a, b bytes.Buffer
	if err := tl.WriteJSON(&a, ExportOptions{CritPath: res.CritPath}); err != nil {
		t.Fatal(err)
	}
	if err := stl.WriteJSON(&b, ExportOptions{CritPath: sres.CritPath}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("engines disagree on the exported timeline (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestParallelEngineTimelineAgrees extends the engine-independence pin
// to the wavefront-slab parallel replayer: the interval stream is
// emitted in the serial finalize pass, so the exported timeline must
// be byte-identical to the compiled engine's for any worker count.
func TestParallelEngineTimelineAgrees(t *testing.T) {
	tl, res := replayTimeline(t, noisyModel())

	dir := t.TempDir()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine:  machine.Config{NRanks: 4, Seed: 1},
		TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	set, closeFn, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	c, err := core.Compile(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ptl := New(c.NRanks())
	pres, err := core.ReplayParallel(c, noisyModel(), core.Options{
		RecordCritPath: true,
		Interval:       ptl.Record,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bad := ptl.Check(pres); len(bad) > 0 {
		t.Fatalf("parallel decomposition violated:\n%s", strings.Join(bad, "\n"))
	}
	var a, b bytes.Buffer
	if err := tl.WriteJSON(&a, ExportOptions{CritPath: res.CritPath}); err != nil {
		t.Fatal(err)
	}
	if err := ptl.WriteJSON(&b, ExportOptions{CritPath: pres.CritPath}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("parallel engine disagrees on the exported timeline (%d vs %d bytes)", a.Len(), b.Len())
	}
}
