// Package timeline reconstructs per-rank interval tracks from a replay
// of the message-passing graph: for every event it derives the
// perturbed [start, end] interval from the traced times plus the
// realized delays, splits the interval into an execution part and a
// wait part, and classifies the wait by what the rank was waiting for
// (late sender, late receiver, collective imbalance). The recorder is
// a core.Options.Interval hook, so it works identically under the
// streaming analyzer, the compiled replayer, and (per lane) the
// batched replayer.
//
// The decomposition is exact, not approximate: interval boundaries are
// shared bit-for-bit between adjacent segments, a rank's last interval
// ends at float64(OrigEnd) + FinalDelay — the same expression Result
// uses for that rank's completion — and the per-rank wait total is
// accumulated in merge order so it equals RankResult.DelayInduced
// bitwise. Check verifies all of this against a Result, and the verify
// campaign runs that check on every generated scenario.
package timeline

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mpgraph/internal/core"
	"mpgraph/internal/trace"
)

// Event is one reconstructed interval on a rank's track. Times are in
// simulated cycles on the perturbed clock: Start/End are the traced
// begin/end plus the realized delays at the corresponding subevents,
// and WaitStart splits the interval so [Start, WaitStart] is execution
// and [WaitStart, End] is the wait charged by the completion merge.
type Event struct {
	Index     int64      // per-rank event index (dense, in track order)
	Kind      trace.Kind // traced record kind
	OrigBegin int64      // traced begin (cycles)
	OrigEnd   int64      // traced end (cycles)

	StartDelay float64 // D at the start subevent
	EndDelay   float64 // D at the end subevent

	Start     float64 // perturbed begin, clamped to the previous End
	WaitStart float64 // End − Wait, clamped into [Start, End]
	End       float64 // float64(OrigEnd) + EndDelay, exactly

	// Wait is the delay the completion merge charged to a remote path:
	// exactly the increment mergeStats added to DelayInduced (zero when
	// the local path won or the event has no merge).
	Wait  float64
	State core.WaitState
}

// Flow is one message edge: the sender's post event to the receiver's
// completion event. Recorded for every receive completion, whether or
// not the data path won the merge.
type Flow struct {
	SrcRank  int
	SrcEvent int64
	DstRank  int
	DstEvent int64
}

// RankWaits is one rank's wait-state decomposition. Total is
// accumulated in merge order and equals RankResult.DelayInduced
// bitwise; the per-state buckets are reporting-level sums whose order
// matches Total's, so LateSender+LateReceiver+Collective may differ
// from Total only by the usual FP reassociation (each bucket alone is
// an in-order partial sum).
type RankWaits struct {
	LateSender   float64
	LateReceiver float64
	Collective   float64
	Total        float64
}

// Timeline accumulates per-rank tracks from IntervalPoints. Record is
// directly usable as core.Options.Interval (or, with a lane wrapper,
// BatchOptions.LaneInterval). Not safe for concurrent use; one replay
// feeds one Timeline.
type Timeline struct {
	Ranks [][]Event
	Flows []Flow
	Waits []RankWaits
}

// New returns a Timeline with capacity hints for nranks tracks.
func New(nranks int) *Timeline {
	return &Timeline{
		Ranks: make([][]Event, 0, nranks),
		Waits: make([]RankWaits, 0, nranks),
	}
}

// Record appends one resolved event end to its rank's track. Points
// must arrive in per-rank event order (the Options.Interval delivery
// contract); ranks may interleave arbitrarily.
func (t *Timeline) Record(p core.IntervalPoint) {
	for len(t.Ranks) <= p.Rank {
		t.Ranks = append(t.Ranks, nil)
		t.Waits = append(t.Waits, RankWaits{})
	}
	evs := t.Ranks[p.Rank]
	start := float64(p.OrigBegin) + p.StartDelay
	end := float64(p.OrigEnd) + p.EndDelay
	// Tiling by construction: a segment begins exactly where the
	// previous one ended. Delay-space order preservation implies
	// start >= prevEnd already; the clamp makes the tiling robust to
	// FP rounding of the absolute times without touching End (the
	// invariant-bearing boundary).
	if n := len(evs); n > 0 && start < evs[n-1].End {
		start = evs[n-1].End
	}
	ws := end - p.Wait
	if ws < start {
		ws = start
	}
	if ws > end {
		ws = end
	}
	t.Ranks[p.Rank] = append(evs, Event{
		Index:      p.Event,
		Kind:       trace.Kind(p.Kind),
		OrigBegin:  p.OrigBegin,
		OrigEnd:    p.OrigEnd,
		StartDelay: p.StartDelay,
		EndDelay:   p.EndDelay,
		Start:      start,
		WaitStart:  ws,
		End:        end,
		Wait:       p.Wait,
		State:      p.State,
	})
	if p.State != core.WaitNone {
		w := &t.Waits[p.Rank]
		w.Total += p.Wait
		switch p.State {
		case core.WaitLateSender:
			w.LateSender += p.Wait
		case core.WaitLateReceiver:
			w.LateReceiver += p.Wait
		case core.WaitCollective:
			w.Collective += p.Wait
		}
	}
	if p.PeerRank >= 0 {
		t.Flows = append(t.Flows, Flow{
			SrcRank:  p.PeerRank,
			SrcEvent: p.PeerEvent,
			DstRank:  p.Rank,
			DstEvent: p.Event,
		})
	}
}

// Check verifies the timeline against the Result of the same replay:
// track shapes, segment ordering, the exact telescoping of intervals
// to each rank's completion time, the bitwise agreement of wait totals
// with DelayInduced, and (when the Result carries a critical path) that
// every path step's recorded delay matches the track. It returns one
// message per violation; an empty slice means the decomposition is
// exact.
func (t *Timeline) Check(res *core.Result) []string {
	var bad []string
	if len(t.Ranks) > res.NRanks {
		bad = append(bad, fmt.Sprintf("timeline has %d tracks for %d ranks", len(t.Ranks), res.NRanks))
	}
	for r := 0; r < res.NRanks; r++ {
		rr := &res.Ranks[r]
		var evs []Event
		if r < len(t.Ranks) {
			evs = t.Ranks[r]
		}
		if int64(len(evs)) != rr.Events {
			bad = append(bad, fmt.Sprintf("rank %d: %d intervals for %d events", r, len(evs), rr.Events))
			continue
		}
		for i := range evs {
			e := &evs[i]
			if e.Index != int64(i) {
				bad = append(bad, fmt.Sprintf("rank %d interval %d: event index %d out of order", r, i, e.Index))
			}
			if e.WaitStart < e.Start || e.End < e.WaitStart {
				bad = append(bad, fmt.Sprintf("rank %d event %d: segments disordered (start=%g waitStart=%g end=%g)", r, i, e.Start, e.WaitStart, e.End))
			}
			if i > 0 && e.Start < evs[i-1].End {
				bad = append(bad, fmt.Sprintf("rank %d event %d: starts (%g) before predecessor ends (%g)", r, i, e.Start, evs[i-1].End))
			}
			if e.Wait < 0 {
				bad = append(bad, fmt.Sprintf("rank %d event %d: negative wait %g", r, i, e.Wait))
			}
			hasWait := e.State != core.WaitNone
			if !hasWait && (e.Wait > 0 || e.Wait < 0) {
				bad = append(bad, fmt.Sprintf("rank %d event %d: wait %g without a wait state", r, i, e.Wait))
			}
		}
		if n := len(evs); n > 0 {
			// The exact telescoping invariant: the track's last boundary is
			// the rank's completion time, computed with the identical FP
			// expression RankResult uses, so equality is bitwise.
			got := evs[n-1].End
			want := float64(rr.OrigEnd) + rr.FinalDelay
			if math.Float64bits(got) != math.Float64bits(want) {
				bad = append(bad, fmt.Sprintf("rank %d: track ends at %v, completion is %v (Δ=%g)", r, got, want, got-want))
			}
		}
		var wr RankWaits
		if r < len(t.Waits) {
			wr = t.Waits[r]
		}
		// The wait total is accumulated in merge order, so it must equal
		// the engine's DelayInduced accumulation bitwise.
		if math.Float64bits(wr.Total) != math.Float64bits(rr.DelayInduced) {
			bad = append(bad, fmt.Sprintf("rank %d: wait total %v != DelayInduced %v (Δ=%g)", r, wr.Total, rr.DelayInduced, wr.Total-rr.DelayInduced))
		}
	}
	for i, f := range t.Flows {
		if !t.hasEvent(f.SrcRank, f.SrcEvent) || !t.hasEvent(f.DstRank, f.DstEvent) {
			bad = append(bad, fmt.Sprintf("flow %d: dangling endpoint %d/%d -> %d/%d", i, f.SrcRank, f.SrcEvent, f.DstRank, f.DstEvent))
		}
	}
	if cp := res.CritPath; cp != nil {
		for i, stp := range cp.Steps {
			if !t.hasEvent(stp.Node.Rank, stp.Node.Event) {
				bad = append(bad, fmt.Sprintf("critpath step %d: node %d/%d not on the timeline", i, stp.Node.Rank, stp.Node.Event))
				continue
			}
			e := &t.Ranks[stp.Node.Rank][stp.Node.Event]
			d := e.StartDelay
			if stp.Node.End {
				d = e.EndDelay
			}
			if math.Float64bits(d) != math.Float64bits(stp.Delay) {
				bad = append(bad, fmt.Sprintf("critpath step %d (%d/%d end=%v): timeline delay %v != path delay %v", i, stp.Node.Rank, stp.Node.Event, stp.Node.End, d, stp.Delay))
			}
		}
	}
	return bad
}

func (t *Timeline) hasEvent(rank int, event int64) bool {
	return rank >= 0 && rank < len(t.Ranks) && event >= 0 && event < int64(len(t.Ranks[rank]))
}

// Span returns the [min start, max end] bounds over the selected ranks
// (all ranks when sel is nil), and false when the timeline is empty.
func (t *Timeline) Span(sel []int) (lo, hi float64, ok bool) {
	for _, evs := range t.selected(sel) {
		if len(evs) == 0 {
			continue
		}
		if !ok {
			lo, hi, ok = evs[0].Start, evs[len(evs)-1].End, true
			continue
		}
		if evs[0].Start < lo {
			lo = evs[0].Start
		}
		if evs[len(evs)-1].End > hi {
			hi = evs[len(evs)-1].End
		}
	}
	return lo, hi, ok
}

func (t *Timeline) selected(sel []int) [][]Event {
	if sel == nil {
		return t.Ranks
	}
	out := make([][]Event, 0, len(sel))
	for _, r := range sel {
		if r >= 0 && r < len(t.Ranks) {
			out = append(out, t.Ranks[r])
		}
	}
	return out
}

// ParseRanks parses a rank filter like "0-3,7,12" against a world of
// nranks, returning the selected ranks sorted and deduplicated. An
// empty spec (or "all") selects every rank, reported as nil.
func ParseRanks(spec string, nranks int) ([]int, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return nil, nil
	}
	seen := make(map[int]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i > 0 {
			lo, hi = part[:i], part[i+1:]
		}
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("timeline: bad rank %q in %q", lo, spec)
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, fmt.Errorf("timeline: bad rank %q in %q", hi, spec)
		}
		if a > b {
			return nil, fmt.Errorf("timeline: empty rank range %q", part)
		}
		for r := a; r <= b; r++ {
			if r < 0 || r >= nranks {
				return nil, fmt.Errorf("timeline: rank %d outside world of %d", r, nranks)
			}
			seen[r] = true
		}
	}
	if len(seen) == 0 {
		return nil, nil
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out, nil
}
