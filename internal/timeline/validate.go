package timeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Validate checks an exported trace-event JSON document against the
// subset of the Chrome trace-event contract the exporter promises:
// well-formed JSON, only known phase types, balanced B/E pairs with
// non-decreasing begin timestamps per (pid, tid) track, flow starts
// paired with flow finishes that do not travel backward in time, and
// numeric counter values. CI runs this over the smoke timeline; the
// verify campaign runs it over every scenario's export. Returns one
// message per violation.
func Validate(data []byte) []string {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{fmt.Sprintf("document does not parse: %v", err)}
	}
	if doc.TraceEvents == nil {
		return []string{"document has no traceEvents array"}
	}

	type track struct{ pid, tid int }
	type open struct {
		name string
		ts   float64
	}
	type flowKey struct {
		cat string
		id  int64
	}
	stacks := make(map[track][]open)
	lastBegin := make(map[track]float64)
	begun := make(map[track]bool)
	flowStart := make(map[flowKey]float64)
	flowDone := make(map[flowKey]bool)

	var bad []string
	report := func(i int, format string, args ...any) {
		bad = append(bad, fmt.Sprintf("event %d: %s", i, fmt.Sprintf(format, args...)))
	}

	for i, raw := range doc.TraceEvents {
		var e struct {
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Ph   string          `json:"ph"`
			Ts   float64         `json:"ts"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			ID   int64           `json:"id"`
			Args json.RawMessage `json:"args"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			report(i, "does not parse: %v", err)
			continue
		}
		tr := track{e.Pid, e.Tid}
		switch e.Ph {
		case "M":
			// Metadata carries no timing.
		case "B":
			if begun[tr] && e.Ts < lastBegin[tr] {
				report(i, "track %d/%d: B %q at %g before previous begin %g", e.Pid, e.Tid, e.Name, e.Ts, lastBegin[tr])
			}
			lastBegin[tr] = e.Ts
			begun[tr] = true
			stacks[tr] = append(stacks[tr], open{name: e.Name, ts: e.Ts})
		case "E":
			st := stacks[tr]
			if len(st) == 0 {
				report(i, "track %d/%d: E with no open B", e.Pid, e.Tid)
				continue
			}
			top := st[len(st)-1]
			stacks[tr] = st[:len(st)-1]
			if e.Ts < top.ts {
				report(i, "track %d/%d: slice %q ends at %g before it begins at %g", e.Pid, e.Tid, top.name, e.Ts, top.ts)
			}
		case "s":
			k := flowKey{e.Cat, e.ID}
			if _, dup := flowStart[k]; dup {
				report(i, "flow %s/%d: duplicate start", e.Cat, e.ID)
			}
			flowStart[k] = e.Ts
		case "f":
			k := flowKey{e.Cat, e.ID}
			start, ok := flowStart[k]
			if !ok {
				report(i, "flow %s/%d: finish with no start", e.Cat, e.ID)
				continue
			}
			if flowDone[k] {
				report(i, "flow %s/%d: duplicate finish", e.Cat, e.ID)
			}
			flowDone[k] = true
			if e.Ts < start {
				report(i, "flow %s/%d: finishes at %g before it starts at %g", e.Cat, e.ID, e.Ts, start)
			}
		case "C":
			var args map[string]json.Number
			dec := json.NewDecoder(bytes.NewReader(e.Args))
			dec.UseNumber()
			if e.Args == nil || dec.Decode(&args) != nil || len(args) == 0 {
				report(i, "counter %q has no numeric args", e.Name)
			}
		default:
			report(i, "unknown phase %q", e.Ph)
		}
	}

	// The end-of-document checks walk maps; sort their messages so the
	// report is stable.
	var tail []string
	for tr, st := range stacks {
		if len(st) > 0 {
			tail = append(tail, fmt.Sprintf("track %d/%d: %d unclosed B slices (first %q at %g)", tr.pid, tr.tid, len(st), st[0].name, st[0].ts))
		}
	}
	for k, start := range flowStart {
		if !flowDone[k] {
			tail = append(tail, fmt.Sprintf("flow %s/%d: start at %g never finishes", k.cat, k.id, start))
		}
	}
	sort.Strings(tail)
	return append(bad, tail...)
}
