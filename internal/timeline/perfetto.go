package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"mpgraph/internal/core"
	"mpgraph/internal/obsv"
)

// Chrome trace-event / Perfetto export. The output is the JSON object
// format ({"traceEvents": [...]}) with duration slices as balanced B/E
// pairs, message and critical-path edges as s/f flow events, windowed
// metrics as C counter tracks, and (optionally) engine self-spans as a
// second process group. Events are emitted one per line in a fixed
// order derived only from the timeline's content, so the same replay
// always produces byte-identical output — the golden test pins this
// across the streaming, compiled, batched, and wavefront-slab parallel
// engines (the parallel engine's replay_slabs/replay_finalize phase
// spans ride the same generic engine-span process).
//
// Timestamps on the simulated-rank process (pid 1) are in simulated
// cycles, not microseconds; viewers render them fine, the unit label is
// just nominal. Engine self-spans (pid 2) are wall-clock microseconds.

// Process/track layout of the exported trace.
const (
	pidRanks  = 1 // simulated ranks: tid = rank
	pidEngine = 2 // engine self-spans: tid = concurrency lane

	catCompute  = "compute"
	catOp       = "op"
	catWait     = "wait"
	catDataflow = "dataflow"
	catCritpath = "critpath"
)

// maxWindows bounds the counter sampling so a tiny -timeline-window on
// a long trace cannot explode the export.
const maxWindows = 1_000_000

// ExportOptions tunes WriteJSON.
type ExportOptions struct {
	// Window is the counter-sampling window in cycles; when not
	// positive the span is split into about 60 windows.
	Window float64
	// Ranks restricts which tracks are exported (nil = all). Counter
	// tracks always aggregate over every rank regardless.
	Ranks []int
	// CritPath, when non-nil, adds flow arrows along the recorded
	// critical path (cross-rank steps only; same-rank steps are
	// contiguous on the track already).
	CritPath *core.CriticalPath
	// Spans, when non-nil, adds the engine self-span process. Span
	// times are wall-clock, so deterministic output requires leaving
	// this nil.
	Spans []obsv.Span
}

// traceEvent is one trace-event JSON object. Field order is fixed by
// the struct, keeping the export byte-stable.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type eventWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (ew *eventWriter) emit(e traceEvent) {
	if ew.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		ew.err = err
		return
	}
	if ew.first {
		ew.first = false
	} else {
		ew.w.WriteString(",\n") //nolint:errcheck
	}
	_, ew.err = ew.w.Write(b)
}

// WriteJSON exports the timeline as Chrome trace-event JSON. See the
// package comment for layout and doc/TIMELINE.md for how to open it.
func (t *Timeline) WriteJSON(w io.Writer, opts ExportOptions) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	ew := &eventWriter{w: bw, first: true}

	sel := opts.Ranks
	exported := make(map[int]bool)
	ew.emit(traceEvent{Name: "process_name", Ph: "M", Pid: pidRanks, Args: map[string]any{"name": "simulated ranks"}})
	for r, evs := range t.Ranks {
		if sel != nil && !containsInt(sel, r) {
			continue
		}
		if len(evs) == 0 {
			continue
		}
		exported[r] = true
		ew.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pidRanks, Tid: r, Args: map[string]any{"name": fmt.Sprintf("rank %d", r)}})
		ew.emit(traceEvent{Name: "thread_sort_index", Ph: "M", Pid: pidRanks, Tid: r, Args: map[string]any{"sort_index": r}})
	}

	// Per-rank slices: compute gap, execution, wait — balanced B/E
	// pairs in track order (segments tile, so pairs are ts-ordered).
	for r, evs := range t.Ranks {
		if !exported[r] {
			continue
		}
		prevEnd := math.Inf(-1)
		started := false
		for i := range evs {
			e := &evs[i]
			if started && e.Start > prevEnd {
				ew.emit(traceEvent{Name: "compute", Cat: catCompute, Ph: "B", Ts: prevEnd, Pid: pidRanks, Tid: r})
				ew.emit(traceEvent{Ph: "E", Ts: e.Start, Pid: pidRanks, Tid: r})
			}
			if e.WaitStart > e.Start {
				ew.emit(traceEvent{Name: e.Kind.String(), Cat: catOp, Ph: "B", Ts: e.Start, Pid: pidRanks, Tid: r})
				ew.emit(traceEvent{Ph: "E", Ts: e.WaitStart, Pid: pidRanks, Tid: r})
			}
			if e.End > e.WaitStart {
				ew.emit(traceEvent{Name: "wait:" + e.State.String(), Cat: catWait, Ph: "B", Ts: e.WaitStart, Pid: pidRanks, Tid: r})
				ew.emit(traceEvent{Ph: "E", Ts: e.End, Pid: pidRanks, Tid: r})
			}
			prevEnd = e.End
			started = true
		}
	}

	// Message flows, sorted by destination (unique per completion) so
	// the order does not depend on cross-rank arrival interleaving.
	flows := append([]Flow(nil), t.Flows...)
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].DstRank != flows[j].DstRank {
			return flows[i].DstRank < flows[j].DstRank
		}
		return flows[i].DstEvent < flows[j].DstEvent
	})
	var id int64
	for _, f := range flows {
		if !exported[f.SrcRank] || !exported[f.DstRank] {
			continue
		}
		src := &t.Ranks[f.SrcRank][f.SrcEvent]
		dst := &t.Ranks[f.DstRank][f.DstEvent]
		id++
		ew.emit(traceEvent{Name: "msg", Cat: catDataflow, Ph: "s", Ts: src.Start, Pid: pidRanks, Tid: f.SrcRank, ID: id})
		ew.emit(traceEvent{Name: "msg", Cat: catDataflow, Ph: "f", Ts: dst.End, Pid: pidRanks, Tid: f.DstRank, ID: id, BP: "e"})
	}

	// Critical-path flows: one arrow per cross-rank step pair.
	if cp := opts.CritPath; cp != nil {
		var cid int64
		for i := 1; i < len(cp.Steps); i++ {
			a, b := cp.Steps[i-1], cp.Steps[i]
			if a.Node.Rank == b.Node.Rank {
				continue
			}
			if !exported[a.Node.Rank] || !exported[b.Node.Rank] {
				continue
			}
			if !t.hasEvent(a.Node.Rank, a.Node.Event) || !t.hasEvent(b.Node.Rank, b.Node.Event) {
				continue
			}
			cid++
			// The path is the argmax chain in delay space, so a step's
			// predecessor can sit later on the absolute clock than the
			// step itself (its traced time was earlier, its delay larger).
			// Clamp the arrowhead forward: trace-event flows must not
			// travel backward in time (Validate enforces this), and the
			// arrow still lands on the correct track and event.
			sTs := t.nodeTime(a.Node)
			fTs := t.nodeTime(b.Node)
			if fTs < sTs {
				fTs = sTs
			}
			ew.emit(traceEvent{Name: "critpath", Cat: catCritpath, Ph: "s", Ts: sTs, Pid: pidRanks, Tid: a.Node.Rank, ID: cid})
			ew.emit(traceEvent{Name: "critpath", Cat: catCritpath, Ph: "f", Ts: fTs, Pid: pidRanks, Tid: b.Node.Rank, ID: cid, BP: "e"})
		}
	}

	// Windowed metric counters, aggregated over every rank.
	wins, w0, wsize, err := t.WindowMetrics(opts.Window)
	if err != nil {
		return err
	}
	for i, m := range wins {
		ts := w0 + float64(i)*wsize
		ew.emit(traceEvent{Name: "parallel_efficiency", Ph: "C", Ts: ts, Pid: pidRanks, Args: map[string]any{"value": m.ParallelEfficiency}})
		ew.emit(traceEvent{Name: "comm_fraction", Ph: "C", Ts: ts, Pid: pidRanks, Args: map[string]any{"value": m.CommFraction}})
		ew.emit(traceEvent{Name: "load_balance", Ph: "C", Ts: ts, Pid: pidRanks, Args: map[string]any{"value": m.LoadBalance}})
	}

	if opts.Spans != nil {
		emitSpans(ew, opts.Spans)
	}

	if ew.err != nil {
		return ew.err
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// nodeTime is the track time of a critical-path node: the event's
// perturbed start for a start subevent, its end for an end subevent.
func (t *Timeline) nodeTime(n core.NodeRef) float64 {
	e := &t.Ranks[n.Rank][n.Event]
	if n.End {
		return e.End
	}
	return e.Start
}

// WindowMetrics splits the timeline's span into fixed windows and
// computes the standard time-resolved metrics per window over all
// ranks: parallel efficiency (compute time / total rank-time),
// communication fraction (communication + wait time / total rank-time)
// and load balance (mean/max of per-rank compute time; 1 = balanced).
// window <= 0 splits the span into about 60 windows. Returns the
// windows plus the grid origin and width.
func (t *Timeline) WindowMetrics(window float64) ([]WindowMetric, float64, float64, error) {
	lo, hi, ok := t.Span(nil)
	if !ok || !(hi > lo) {
		return nil, 0, 0, nil
	}
	if window <= 0 {
		window = math.Ceil((hi - lo) / 60)
		if window < 1 {
			window = 1
		}
	}
	nwin := int(math.Ceil((hi - lo) / window))
	if nwin < 1 {
		nwin = 1
	}
	if nwin > maxWindows {
		return nil, 0, 0, fmt.Errorf("timeline: window %g over span %g yields %d windows (max %d)", window, hi-lo, nwin, maxWindows)
	}
	n := len(t.Ranks)
	compute := make([]float64, nwin*n) // window-major per-rank compute time
	comm := make([]float64, nwin)      // communication + wait, summed over ranks
	accumulate := func(rank int, segLo, segHi float64, isComm bool) {
		if !(segHi > segLo) {
			return
		}
		first := int((segLo - lo) / window)
		if first < 0 {
			first = 0
		}
		for wi := first; wi < nwin; wi++ {
			wLo := lo + float64(wi)*window
			if !(wLo < segHi) {
				break
			}
			wHi := wLo + window
			ov := math.Min(segHi, wHi) - math.Max(segLo, wLo)
			if ov > 0 {
				if isComm {
					comm[wi] += ov
				} else {
					compute[wi*n+rank] += ov
				}
			}
		}
	}
	for r, evs := range t.Ranks {
		prevEnd := 0.0
		started := false
		for i := range evs {
			e := &evs[i]
			if started {
				accumulate(r, prevEnd, e.Start, false) // compute gap
			}
			isComm := e.Kind.IsPointToPoint() || e.Kind.IsCompletion() || e.Kind.IsCollective()
			accumulate(r, e.Start, e.WaitStart, isComm)
			accumulate(r, e.WaitStart, e.End, true) // waits always count as communication
			prevEnd = e.End
			started = true
		}
	}
	out := make([]WindowMetric, nwin)
	for wi := 0; wi < nwin; wi++ {
		var sum, max float64
		for r := 0; r < n; r++ {
			v := compute[wi*n+r]
			sum += v
			if v > max {
				max = v
			}
		}
		denom := float64(n) * window
		m := &out[wi]
		m.ParallelEfficiency = sum / denom
		m.CommFraction = comm[wi] / denom
		m.LoadBalance = 1.0
		if max > 0 {
			m.LoadBalance = sum / float64(n) / max
		}
	}
	return out, lo, window, nil
}

// WindowMetric is one counter window's aggregate.
type WindowMetric struct {
	ParallelEfficiency float64
	CommFraction       float64
	LoadBalance        float64
}

// emitSpans renders engine self-spans as a second process: spans are
// packed greedily onto concurrency lanes (a span goes to the first
// lane free at its start), one thread per lane, timestamps converted
// from wall-clock nanoseconds to microseconds.
func emitSpans(ew *eventWriter, spans []obsv.Span) {
	ordered := append([]obsv.Span(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		if ordered[i].End != ordered[j].End {
			return ordered[i].End < ordered[j].End
		}
		return ordered[i].Name < ordered[j].Name
	})
	var laneEnd []int64
	lanes := make([]int, len(ordered))
	for i, s := range ordered {
		lane := -1
		for l, end := range laneEnd {
			if end <= s.Start {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = s.End
		lanes[i] = lane
	}
	ew.emit(traceEvent{Name: "process_name", Ph: "M", Pid: pidEngine, Args: map[string]any{"name": "engine"}})
	for l := range laneEnd {
		ew.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pidEngine, Tid: l, Args: map[string]any{"name": fmt.Sprintf("lane %d", l)}})
		ew.emit(traceEvent{Name: "thread_sort_index", Ph: "M", Pid: pidEngine, Tid: l, Args: map[string]any{"sort_index": l}})
	}
	for i, s := range ordered {
		start := float64(s.Start) / 1e3
		end := float64(s.End) / 1e3
		if end < start {
			end = start
		}
		ew.emit(traceEvent{Name: s.Name, Cat: "engine", Ph: "B", Ts: start, Pid: pidEngine, Tid: lanes[i]})
		ew.emit(traceEvent{Ph: "E", Ts: end, Pid: pidEngine, Tid: lanes[i]})
	}
}

// WriteSpansJSON exports engine self-spans alone as a trace-event
// document — the -selftrace output of CLIs that have no simulated
// timeline to attach the spans to.
func WriteSpansJSON(w io.Writer, spans []obsv.Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	ew := &eventWriter{w: bw, first: true}
	emitSpans(ew, spans)
	if ew.err != nil {
		return ew.err
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
