package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := Map(100, Options{Workers: workers}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d landed as %d", workers, i, v)
			}
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

// TestMapNoDoubleWrite hammers the pool with far more tasks than
// workers and asserts every result slot is written exactly once.
func TestMapNoDoubleWrite(t *testing.T) {
	const n = 2000
	writes := make([]atomic.Int32, n)
	_, err := Map(n, Options{Workers: 8}, func(i int) (int, error) {
		writes[i].Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range writes {
		if c := writes[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

// TestMapFirstErrorWins checks that the reported error is always the
// lowest-numbered failing task's — the error a serial loop would have
// returned — regardless of completion order.
func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for trial := 0; trial < 20; trial++ {
		_, err := Map(64, Options{Workers: 8}, func(i int) (int, error) {
			if i >= 17 {
				return 0, fmt.Errorf("task-%d: %w", i, boom)
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("error swallowed")
		}
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("error is %T, want *TaskError", err)
		}
		if te.Task != 17 {
			t.Fatalf("trial %d: reported task %d, want 17 (serial first failure)", trial, te.Task)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("unwrap lost the cause: %v", err)
		}
	}
}

// TestMapCancelsRemaining verifies that after a failure the pool stops
// claiming work: with W workers at most W tasks past the failing one
// may already be in flight, so a failing task near the front must leave
// most of the task list untouched.
func TestMapCancelsRemaining(t *testing.T) {
	const n, workers = 10_000, 4
	var ran atomic.Int64
	err := Run(n, Options{Workers: workers}, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got > n/2 {
		t.Fatalf("%d of %d tasks ran after an index-0 failure; cancellation is not working", got, n)
	}
}

// TestMapPanicCapture: a panicking task must surface as *PanicError on
// the right task index, not kill the process.
func TestMapPanicCapture(t *testing.T) {
	_, err := Map(32, Options{Workers: 8}, func(i int) (int, error) {
		if i == 5 {
			panic("bad model")
		}
		return i, nil
	})
	var te *TaskError
	if !errors.As(err, &te) || te.Task != 5 {
		t.Fatalf("err = %v, want task 5", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not captured as *PanicError: %v", err)
	}
	if pe.Value != "bad model" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload lost: %+v", pe)
	}
}

// TestMapErrorAndPanicRace mixes erroring, panicking, and healthy
// tasks under -race; the winner must still be the lowest failing index.
func TestMapErrorAndPanicRace(t *testing.T) {
	_, err := Map(256, Options{Workers: 16}, func(i int) (int, error) {
		switch {
		case i == 31:
			return 0, errors.New("error task")
		case i > 31 && i%7 == 0:
			panic(i)
		}
		return i, nil
	})
	var te *TaskError
	if !errors.As(err, &te) || te.Task != 31 {
		t.Fatalf("err = %v, want the task-31 error", err)
	}
}

func TestTaskSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for task := 0; task < 1000; task++ {
		s := TaskSeed(42, task)
		if s2 := TaskSeed(42, task); s2 != s {
			t.Fatalf("TaskSeed not a pure function: %d vs %d", s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between tasks %d and %d", prev, task)
		}
		seen[s] = task
	}
	if TaskSeed(1, 0) == TaskSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
	if TaskSeed(0, 0) == TaskSeed(0, 1) {
		t.Fatal("task index ignored")
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got := (Options{}).workers(1 << 20); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Workers: 8}).workers(3); got != 3 {
		t.Fatalf("workers not clamped to task count: %d", got)
	}
	if got := (Options{Workers: -1}).workers(2); got < 1 {
		t.Fatalf("workers fell below 1: %d", got)
	}
}

func TestRunPropagatesSuccess(t *testing.T) {
	var sum atomic.Int64
	if err := Run(100, Options{Workers: 4}, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}
