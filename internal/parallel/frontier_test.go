package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

// chainDeps models n streams where stream s may only pass position p
// once stream s-1 has published p+1 — a strict diagonal wavefront, the
// worst case for the frontier (every step couples adjacent streams).
func chainAdvance(f *Frontier, n int, L int64, hits *atomic.Int64) func(worker, stream int) int64 {
	return func(_, s int) int64 {
		pos := f.At(s)
		for pos < L {
			if s > 0 && f.At(s-1) < pos+1 {
				break
			}
			pos++
			hits.Add(1)
			f.Publish(s, pos)
		}
		return pos
	}
}

// TestFrontierChainCompletes drives a diagonal dependency chain at
// several worker counts; every stream must reach its target and the
// total step count must be exactly n*L (no step runs twice).
func TestFrontierChainCompletes(t *testing.T) {
	const n, L = 7, 23
	targets := make([]int64, n)
	for i := range targets {
		targets[i] = L
	}
	for _, workers := range []int{1, 2, 3, 8} {
		var f Frontier
		f.Reset(n)
		var hits atomic.Int64
		if err := f.Run(workers, targets, nil, chainAdvance(&f, n, L, &hits)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := hits.Load(); got != n*L {
			t.Fatalf("workers=%d: %d steps executed, want %d", workers, got, n*L)
		}
		for s := 0; s < n; s++ {
			if f.At(s) != L {
				t.Fatalf("workers=%d: stream %d stopped at %d", workers, s, f.At(s))
			}
		}
	}
}

// TestFrontierSetupBarrier verifies every worker's setup shard runs
// before any advance call observes the shared state.
func TestFrontierSetupBarrier(t *testing.T) {
	const n = 6
	var f Frontier
	f.Reset(n)
	targets := make([]int64, n)
	ready := make([]atomic.Bool, n)
	for i := range targets {
		targets[i] = 1
	}
	var violations atomic.Int64
	err := f.Run(3, targets,
		func(me int) {
			for s := me; s < n; s += 3 {
				ready[s].Store(true)
			}
		},
		func(_, s int) int64 {
			for i := range ready {
				if !ready[i].Load() {
					violations.Add(1)
				}
			}
			return 1
		})
	if err != nil {
		t.Fatal(err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d advance calls ran before setup completed", v)
	}
}

// TestFrontierPanicPropagates pins the abort path: a panicking
// advance must surface as a TaskError wrapping a PanicError and must
// not hang the other workers.
func TestFrontierPanicPropagates(t *testing.T) {
	const n = 4
	var f Frontier
	f.Reset(n)
	targets := []int64{8, 8, 8, 8}
	err := f.Run(4, targets, nil, func(_, s int) int64 {
		if s == 2 {
			panic("slab exploded")
		}
		return f.At(s) + 1
	})
	if err == nil {
		t.Fatal("expected an error from the panicking stream")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a *TaskError", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not wrap a *PanicError", err)
	}
}

// TestFrontierSetupPanicReleasesBarrier pins the barrier-drop rule: a
// panic inside setup must not leave the remaining workers waiting at
// the rendezvous forever.
func TestFrontierSetupPanicReleasesBarrier(t *testing.T) {
	const n = 4
	var f Frontier
	f.Reset(n)
	targets := []int64{1, 1, 1, 1}
	err := f.Run(4, targets,
		func(me int) {
			if me == 1 {
				panic("setup exploded")
			}
		},
		func(_, s int) int64 { return 1 })
	if err == nil {
		t.Fatal("expected an error from the panicking setup shard")
	}
}

// TestFrontierSingleWorkerTopological: one worker must complete any
// acyclic schedule alone (the deadlock-freedom degenerate case).
func TestFrontierSingleWorkerTopological(t *testing.T) {
	const n, L = 5, 11
	targets := make([]int64, n)
	for i := range targets {
		targets[i] = L
	}
	var f Frontier
	f.Reset(n)
	var hits atomic.Int64
	if err := f.Run(1, targets, nil, chainAdvance(&f, n, L, &hits)); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != n*L {
		t.Fatalf("single worker executed %d steps, want %d", hits.Load(), n*L)
	}
}
