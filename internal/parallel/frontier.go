package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Dependency-scheduled task streams.
//
// Map/Run fan out *independent* tasks; a Frontier coordinates tasks
// that depend on each other's progress — the shape intra-replay
// wavefront execution needs. The model: n ordered streams of work,
// each stream advancing through integer positions 0..target. A stream
// may only advance past a position once other streams have published
// the positions it depends on; the dependency data itself lives with
// the caller (the Frontier knows nothing about *why* stream 3 waits
// for stream 7 — it only carries the published positions, one padded
// atomic per stream, and drives the worker loop).
//
// The caller guarantees acyclicity in the useful sense: whenever any
// stream is short of its target, at least one stream can advance
// given the currently published positions. Under that contract Run
// terminates for every worker count, and a single worker executes the
// streams in a valid topological order.

// frontierSlot is one stream's published position, padded out to its
// own cache line so publication on one stream never false-shares with
// polling on a neighbor.
type frontierSlot struct {
	pos atomic.Int64
	_   [56]byte
}

// Frontier carries the published positions of n dependency-coupled
// streams. The zero value is empty; Reset sizes it. A Frontier may be
// pooled and reused across runs (Reset rewinds every stream to 0).
type Frontier struct {
	slots  []frontierSlot
	stalls atomic.Int64
}

// Reset sizes the frontier to n streams, all at position 0, reusing
// the existing backing when it is large enough.
func (f *Frontier) Reset(n int) {
	if cap(f.slots) < n {
		f.slots = make([]frontierSlot, n)
	}
	f.slots = f.slots[:n]
	for i := range f.slots {
		f.slots[i].pos.Store(0)
	}
	f.stalls.Store(0)
}

// Streams returns the stream count the frontier is sized for.
func (f *Frontier) Streams() int { return len(f.slots) }

// At returns stream s's published position. All sync/atomic operations
// are sequentially consistent (Go 1.19 memory model), so any memory
// written by stream s before it published position p is visible to a
// caller that observes At(s) >= p.
//
//mpg:hotpath
func (f *Frontier) At(s int) int64 { return f.slots[s].pos.Load() } //mpg:lint-ignore hotpathprop atomic.Int64 is stubbed by the analysis loader; Load is a single atomic read

// Publish records stream s's new position mid-advance, making every
// write the stream performed up to that position visible to other
// workers' At polls. Positions must be monotone per stream; only the
// worker currently advancing stream s may publish it.
//
//mpg:hotpath
func (f *Frontier) Publish(s int, pos int64) { f.slots[s].pos.Store(pos) } //mpg:lint-ignore hotpathprop atomic.Int64 is stubbed by the analysis loader; Store is a single atomic write

// Stalls reports how many scheduler yields the last Run performed
// (cycles in which a worker found none of its streams advanceable).
// Purely observational.
func (f *Frontier) Stalls() int64 { return f.stalls.Load() }

// Run drives every stream to its target position across min(workers,
// streams) goroutines; the calling goroutine is worker 0, so a
// one-worker run spawns nothing. Streams are statically owned
// round-robin (stream s belongs to worker s mod W): only the owner
// calls advance for a stream, so per-stream caller state needs no
// locking.
//
// advance(worker, stream) must attempt to run whatever work is ready
// on the stream given the currently published positions of the other
// streams (via At), publish intermediate positions as it goes if
// other streams may depend on them, and return the stream's new
// position; returning the prior position means the stream is blocked.
// Workers cycle over their streams and yield the processor on cycles
// that make no progress, so a blocked stream costs a poll, not a spin.
//
// If setup is non-nil every worker first runs setup(worker) — a flat
// pre-phase sharded by worker index — and all workers rendezvous at a
// barrier before any advance call, so advance may rely on the whole
// setup phase being complete.
//
// A panic in setup or advance is captured, aborts the run (workers
// drain at the next cycle boundary), and is returned as a *TaskError
// wrapping a *PanicError, with Task holding the worker index.
func (f *Frontier) Run(workers int, targets []int64, setup func(worker int), advance func(worker, stream int) int64) error {
	n := len(f.slots)
	if n == 0 {
		return nil
	}
	if len(targets) < n {
		panic("parallel: Frontier.Run targets shorter than stream count")
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}

	var aborted atomic.Bool
	errs := make([]error, w)
	var barrier sync.WaitGroup
	if setup != nil {
		barrier.Add(w)
	}

	run := func(me int) {
		defer func() {
			if v := recover(); v != nil {
				buf := make([]byte, 8192)
				buf = buf[:runtime.Stack(buf, false)]
				errs[me] = &PanicError{Value: v, Stack: buf}
				aborted.Store(true)
			}
		}()
		if setup != nil {
			func() {
				// The barrier must drop even if setup panics, or the
				// remaining workers would wait forever; the panic then
				// propagates to the recover above and flags the abort
				// the other workers check after the rendezvous.
				defer barrier.Done()
				setup(me)
			}()
			barrier.Wait()
		}
		var stalls int64
		defer func() { f.stalls.Add(stalls) }()
		for {
			if aborted.Load() {
				return
			}
			progressed := false
			done := true
			for s := me; s < n; s += w {
				cur := f.slots[s].pos.Load()
				if cur >= targets[s] {
					continue
				}
				done = false
				if np := advance(me, s); np > cur {
					f.slots[s].pos.Store(np)
					progressed = true
				}
			}
			if done {
				return
			}
			if !progressed {
				stalls++
				runtime.Gosched()
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 1; k < w; k++ {
		go func(me int) {
			defer wg.Done()
			run(me)
		}(k)
	}
	run(0)
	wg.Wait()

	for me, err := range errs {
		if err != nil {
			return &TaskError{Task: me, Err: err}
		}
	}
	return nil
}
