// Package parallel is the replay fan-out engine: it runs N independent
// tasks (typically one graph replay per task — a sweep point, a Monte
// Carlo trial, an experiment grid cell) across a bounded worker pool
// while preserving the determinism contract the analyzer is built on.
//
// Replays over a fixed trace are embarrassingly parallel: each task
// re-traces (or re-reads a snapshot of) the workload and analyzes it
// under its own Model, so no mutable state crosses task boundaries.
// The engine adds the three properties parallel studies need on top of
// raw goroutines:
//
//   - Deterministic seeding. Per-task randomness must never depend on
//     scheduling order, so tasks derive their seeds with TaskSeed
//     (seed = hash(baseSeed, taskIndex)) instead of sharing an RNG.
//   - Ordered collection. Results land at their task index regardless
//     of completion order, so workers=1 and workers=8 produce
//     byte-identical output.
//   - Failure isolation. A task that returns an error or panics does
//     not kill the process or the other in-flight tasks: remaining
//     unstarted tasks are cancelled, in-flight tasks finish, and the
//     error reported is always the one from the lowest-numbered
//     failing task — exactly the error a serial loop would have
//     returned.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpgraph/internal/obsv"
)

// Options tunes a fan-out.
type Options struct {
	// Workers bounds the worker pool. Zero or negative means
	// runtime.GOMAXPROCS(0). The pool never exceeds the task count.
	Workers int
	// Metrics, when non-nil, receives pool observability: a
	// parallel_task_ms latency histogram, tasks/failures counters, the
	// effective pool size, and a parallel_pool_utilization gauge
	// (busy time / (workers × wall time) of the last fan-out). Metrics
	// are out-of-band: they never influence scheduling or results.
	Metrics *obsv.Registry
}

// workers resolves the effective pool size for n tasks.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TaskSeed derives the RNG seed for one task from a base seed and the
// task index. The derivation is a pure hash (splitmix64 over both
// words), so per-task randomness depends only on (base, task) — never
// on worker scheduling — and distinct tasks receive decorrelated
// streams even for adjacent indices.
func TaskSeed(base uint64, task int) uint64 {
	x := base ^ 0x9e3779b97f4a7c15
	for _, w := range [2]uint64{base, uint64(task)} {
		x += w + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// TaskError wraps an error returned by one task with its index.
type TaskError struct {
	// Task is the failing task's index.
	Task int
	// Err is the task's error (a *PanicError for captured panics).
	Err error
}

// Error implements error.
func (e *TaskError) Error() string { return fmt.Sprintf("task %d: %v", e.Task, e.Err) }

// Unwrap exposes the underlying task error.
func (e *TaskError) Unwrap() error { return e.Err }

// PanicError is a panic captured inside a task, converted to an error
// so one bad model cannot kill a 10k-trial study.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Map runs fn(0..n-1) across the worker pool and returns the results
// in task order. On failure it returns nil and a *TaskError wrapping
// the error (or captured panic) of the lowest-numbered failing task —
// the same error a serial loop over the tasks would have surfaced.
// Tasks not yet started when the first failure is observed are
// cancelled; tasks already in flight run to completion.
func Map[T any](n int, opts Options, fn func(task int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)

	// Instrument handles are nil when no registry is attached; every
	// method on them is then a no-op, so the hot path never branches.
	m := opts.Metrics
	taskMS := m.Histogram("parallel_task_ms", obsv.ExpBuckets(0.01, 4, 12))
	nTasks := m.Counter("parallel_tasks_total")
	nFails := m.Counter("parallel_task_failures_total")
	mapStart := time.Now()
	defer m.Timer("parallel_map").Start()()

	var next atomic.Int64  // next unclaimed task index
	var failed atomic.Bool // set on first observed failure
	var wg sync.WaitGroup

	// Every claimed task runs to completion; the cancellation check
	// precedes the claim. Tasks are claimed in index order, so if any
	// task fails, the lowest-numbered failing task was claimed before
	// the failure flag could have been set (only a lower-numbered
	// failure could set it first, contradicting minimality) and its
	// error is always recorded — the reported error is deterministic.
	worker := func() {
		defer wg.Done()
		for {
			if failed.Load() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			t0 := time.Now()
			err := runTask(i, fn, &results[i])
			taskMS.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
			nTasks.Inc()
			if err != nil {
				nFails.Inc()
				errs[i] = err
				failed.Store(true)
				return
			}
		}
	}
	w := opts.workers(n)
	m.Gauge("parallel_pool_workers").SetMax(float64(w))
	wg.Add(w)
	for k := 0; k < w; k++ {
		go worker()
	}
	wg.Wait()

	if m != nil {
		if wall := float64(time.Since(mapStart)) / float64(time.Millisecond); wall > 0 {
			m.Gauge("parallel_pool_utilization").Set(taskMS.Sum() / (float64(w) * wall))
		}
	}

	if failed.Load() {
		for i, err := range errs {
			if err != nil {
				return nil, &TaskError{Task: i, Err: err}
			}
		}
	}
	return results, nil
}

// runTask executes one task with panic capture, writing its result
// through out (each result slot is written at most once, by the single
// worker that claimed the index).
func runTask[T any](i int, fn func(task int) (T, error), out *T) (err error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 8192)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Value: v, Stack: buf}
		}
	}()
	v, err := fn(i)
	if err != nil {
		return err
	}
	*out = v
	return nil
}

// Run is Map without per-task results: it runs fn over 0..n-1 and
// returns the first (lowest-index) failure, if any.
func Run(n int, opts Options, fn func(task int) error) error {
	_, err := Map(n, opts, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
