// Package mpgraph is a trace-driven performance analyzer for
// message-passing parallel programs, reproducing Sottile, Chandu &
// Bader, "Performance analysis of parallel programs via
// message-passing graph traversal" (IPPS 2006).
//
// The pipeline has three stages, each usable on its own:
//
//  1. Trace: run a workload (an ordinary Go function per rank) on the
//     deterministic simulated MPI runtime over a configurable machine
//     model. The PMPI-style tracing layer records per-rank event
//     traces with local (unsynchronized) clocks.
//
//  2. Parameterize: probe a platform with microbenchmarks (FTQ noise,
//     ping-pong latency, bandwidth) to obtain a Signature whose
//     empirical distributions — or fitted analytic families — become
//     the perturbation model.
//
//  3. Analyze: stream the traces through the message-passing graph
//     builder, inject perturbations (OS noise on local edges, latency
//     and size-dependent deltas on message edges), and propagate them
//     with max() merges to per-rank delay results.
//
// Quick start:
//
//	run, err := mpgraph.Trace(mpgraph.RunConfig{
//		Machine: mpgraph.MachineConfig{NRanks: 16, Seed: 1},
//	}, myProgram)
//	set, _ := run.TraceSet()
//	res, err := mpgraph.Analyze(set, &mpgraph.Model{
//		OSNoise:    mpgraph.MustParseDistribution("exponential:200"),
//		MsgLatency: mpgraph.MustParseDistribution("spike:0.01,constant:5000"),
//	}, mpgraph.AnalyzeOptions{})
//	fmt.Println(res.MaxFinalDelay)
//
// See the examples/ directory for complete programs and EXPERIMENTS.md
// for the paper-reproduction harness.
package mpgraph

import (
	"mpgraph/internal/baseline"
	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/microbench"
	"mpgraph/internal/mpi"
	"mpgraph/internal/scenario"
	"mpgraph/internal/sweep"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// Core analysis types.
type (
	// Model parameterizes the simulated perturbations (paper §5).
	Model = core.Model
	// AnalyzeOptions tunes the streaming analyzer.
	AnalyzeOptions = core.Options
	// Result is an analysis outcome.
	Result = core.Result
	// RankResult is one rank's analysis summary.
	RankResult = core.RankResult
	// Attribution decomposes a rank's delay by cause (own noise,
	// remote noise, message deltas).
	Attribution = core.Attribution
	// Graph is a materialized message-passing graph (for DOT export).
	Graph = core.Graph
	// PropagationMode selects additive vs anchored delta combining.
	PropagationMode = core.PropagationMode
	// CollectiveMode selects the compact or explicit collective model.
	CollectiveMode = core.CollectiveMode
)

// Propagation and collective modes (see core documentation).
const (
	PropagationAdditive = core.PropagationAdditive
	PropagationAnchored = core.PropagationAnchored
	CollectiveApprox    = core.CollectiveApprox
	CollectiveExplicit  = core.CollectiveExplicit
)

// Runtime and tracing types.
type (
	// RunConfig configures a traced run.
	RunConfig = mpi.Config
	// MachineConfig describes the simulated platform.
	MachineConfig = machine.Config
	// Program is the per-rank body of a parallel run.
	Program = mpi.Program
	// Rank is a program's handle to the runtime.
	Rank = mpi.Rank
	// Comm is a communicator handle.
	Comm = mpi.Comm
	// Request is a nonblocking operation handle.
	Request = mpi.Request
	// RunResult is a completed traced run.
	RunResult = mpi.Result
	// TraceSet is a complete traced run's per-rank readers.
	TraceSet = trace.Set
)

// Distribution and measurement types.
type (
	// Distribution is a perturbation magnitude source.
	Distribution = dist.Distribution
	// Signature is a microbenchmark-derived platform fingerprint.
	Signature = microbench.Signature
	// MicrobenchConfig tunes the probe sizes.
	MicrobenchConfig = microbench.Config
	// ReplayParams is the Dimemas-style baseline's linear comm model.
	ReplayParams = baseline.Params
	// ReplayResult is a baseline replay outcome.
	ReplayResult = baseline.Result
	// WorkloadOptions are the shared workload knobs.
	WorkloadOptions = workloads.Options
	// SweepConfig describes a perturbation parameter sweep (§6.1).
	SweepConfig = sweep.Config
	// SweepResult is a completed sweep with its linear fit.
	SweepResult = sweep.Result
	// SweepParam selects the swept axis.
	SweepParam = sweep.Param
)

// Sweep axes.
const (
	SweepLatency = sweep.ParamLatency
	SweepNoise   = sweep.ParamNoise
	SweepPerByte = sweep.ParamPerByte
	SweepRanks   = sweep.ParamRanks
)

// Sweep traces a workload once per point and analyzes it under the
// swept perturbation parameter — the paper's §6.1 protocol as a
// library call.
func Sweep(cfg SweepConfig) (*SweepResult, error) { return sweep.Run(cfg) }

// Trace executes a program on the simulated runtime, producing traces
// per RunConfig (in memory by default, or to RunConfig.TraceDir).
func Trace(cfg RunConfig, prog Program) (*RunResult, error) { return mpi.Run(cfg, prog) }

// Analyze streams a trace set through the message-passing graph and
// propagates the model's perturbations (the paper's contribution).
func Analyze(set *TraceSet, model *Model, opts AnalyzeOptions) (*Result, error) {
	return core.Analyze(set, model, opts)
}

// OpenTraceDir opens a directory of per-rank trace files; the returned
// function releases the file handles.
func OpenTraceDir(dir string) (*TraceSet, func() error, error) { return trace.OpenDir(dir) }

// BuildGraph materializes the message-passing graph of a trace set
// (for visualization; Analyze never materializes it).
func BuildGraph(set *TraceSet) (*Graph, error) { return core.BuildGraph(set) }

// ParseDistribution parses a textual distribution spec such as
// "exponential:250" or "spike:0.01,lognormal:8,0.5".
func ParseDistribution(spec string) (Distribution, error) { return dist.Parse(spec) }

// MustParseDistribution is ParseDistribution, panicking on error.
func MustParseDistribution(spec string) Distribution { return dist.MustParse(spec) }

// Workload builds a registered workload program by name ("tokenring",
// "stencil1d", ...; see WorkloadNames).
func Workload(name string, opts WorkloadOptions) (Program, error) {
	return workloads.BuildByName(name, opts)
}

// WorkloadNames lists the registered workloads.
func WorkloadNames() []string { return workloads.Names() }

// MeasureSignature runs the microbenchmark suite against a platform
// model (paper §5).
func MeasureSignature(platform MachineConfig, cfg MicrobenchConfig, label string) (*Signature, error) {
	return microbench.Measure(platform, cfg, label)
}

// LoadSignature reads a JSON signature saved by Signature.Save.
func LoadSignature(path string) (*Signature, error) { return microbench.Load(path) }

// Replay runs the Dimemas-style discrete-event baseline over a trace
// set (the related-work comparator, paper §1.1).
func Replay(set *TraceSet, params ReplayParams) (*ReplayResult, error) {
	return baseline.Replay(set, params)
}

// LoadScenario reads a scenario JSON file (see internal/scenario for
// the format) and compiles it into a perturbation model.
func LoadScenario(path string) (*Model, error) {
	m, _, err := scenario.Load(path)
	return m, err
}

// ModelFromSignature builds a perturbation model from a measured
// platform signature: OS noise from the FTQ empirical distribution and
// message-edge deltas from the latency jitter empirical distribution.
// This answers the paper's headline question — "how would the traced
// application behave on a platform with this signature's noise?"
func ModelFromSignature(sig *Signature, seed uint64) *Model {
	return &Model{
		Seed:         seed,
		OSNoise:      sig.NoiseEmpirical(),
		NoiseQuantum: sig.Quantum,
		MsgLatency:   sig.LatencyJitterEmpirical(),
	}
}
