// Placement study: the same 2-D halo-exchange code traced on four
// interconnect topologies (full crossbar, ring, 2-D mesh, hypercube),
// where per-pair latency scales with hop count. The traced makespans
// show how much the communication pattern's locality matches each
// network, and a latency-jitter analysis on top shows which placement
// amplifies interconnect noise the most.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"
	"os"

	"mpgraph"
	"mpgraph/internal/machine"
	"mpgraph/internal/report"
)

func main() {
	const nranks = 16
	prog, err := mpgraph.Workload("stencil2d", mpgraph.WorkloadOptions{Iterations: 10})
	if err != nil {
		log.Fatal(err)
	}

	topologies := []machine.Topology{
		machine.TopoFull, machine.TopoRing, machine.TopoMesh2D, machine.TopoHypercube,
	}
	tbl := report.NewTable(
		fmt.Sprintf("stencil2d on %d ranks: topology vs traced makespan and jitter sensitivity", nranks),
		"topology", "traced-makespan", "vs-crossbar", "jitter-max-delay")

	var crossbar float64
	for _, topo := range topologies {
		mcfg := mpgraph.MachineConfig{NRanks: nranks, Seed: 3, Topology: topo}
		run, err := mpgraph.Trace(mpgraph.RunConfig{Machine: mcfg}, prog)
		if err != nil {
			log.Fatal(err)
		}
		if topo == machine.TopoFull {
			crossbar = float64(run.Makespan)
		}
		set, err := run.TraceSet()
		if err != nil {
			log.Fatal(err)
		}
		// Interconnect jitter: rare 10k-cycle stalls on message edges.
		res, err := mpgraph.Analyze(set, &mpgraph.Model{
			Seed:       1,
			MsgLatency: mpgraph.MustParseDistribution("spike:0.02,constant:10000"),
		}, mpgraph.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(topo.String(), run.Makespan,
			fmt.Sprintf("%.2fx", float64(run.Makespan)/crossbar),
			fmt.Sprintf("%.0f", res.MaxFinalDelay))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe periodic stencil's wrap-around exchanges are long hops on the ring")
	fmt.Println("and the (non-torus) mesh; the hypercube keeps every neighbor within")
	fmt.Println("log2(p) hops, so it comes closest to the crossbar.")
}
