// Token ring: the paper's Section 6.1 experiment at full scale.
//
// A 128-rank token-ring n-body code is traced once; a constant
// per-message perturbation is then swept from 0 to 700 cycles in
// 100-cycle increments (exactly the paper's protocol), and the
// resulting per-rank runtime growth is printed together with the
// linear fit. The paper's observation — "the runtime of each processor
// increased by approximately traversals × increment × p cycles" —
// falls out of the fit's slope.
//
//	go run ./examples/tokenring
package main

import (
	"fmt"
	"log"
	"os"

	"mpgraph"
	"mpgraph/internal/dist"
	"mpgraph/internal/report"
)

const (
	ranks      = 128
	traversals = 10
)

func main() {
	prog, err := mpgraph.Workload("tokenring", mpgraph.WorkloadOptions{
		Iterations: traversals,
		Bytes:      4096,
		Compute:    50_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	trace := func() *mpgraph.TraceSet {
		run, err := mpgraph.Trace(mpgraph.RunConfig{
			Machine: mpgraph.MachineConfig{NRanks: ranks, Seed: 2006},
		}, prog)
		if err != nil {
			log.Fatal(err)
		}
		set, err := run.TraceSet()
		if err != nil {
			log.Fatal(err)
		}
		return set
	}

	tbl := report.NewTable(
		fmt.Sprintf("§6.1: %d-rank token ring, %d traversals", ranks, traversals),
		"perturbation/message", "max-delay", "mean-delay", "delay/(traversals×p)")
	var xs, ys []float64
	for c := 0.0; c <= 700; c += 100 {
		model := &mpgraph.Model{MsgLatency: dist.Constant{C: c}}
		res, err := mpgraph.Analyze(trace(), model, mpgraph.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		xs = append(xs, c)
		ys = append(ys, res.MaxFinalDelay)
		tbl.AddRow(c, res.MaxFinalDelay, res.MeanFinalDelay,
			res.MaxFinalDelay/float64(traversals*ranks))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fit := dist.FitLinear(xs, ys)
	fmt.Printf("\nlinear fit: delay = %.2f × perturbation (R² = %.6f)\n", fit.Slope, fit.R2)
	fmt.Printf("paper's expectation: slope ≈ traversals × p = %d × %d = %d\n",
		traversals, ranks, traversals*ranks)
}
