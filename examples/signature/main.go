// Signature-driven cross-platform prediction: the paper's Section 5/6
// scenario end to end.
//
// A CG-like application is traced on a *quiet* platform (think: a
// lightweight-kernel cluster, the paper's bproc example). Three other
// platforms — a desktop-class noisy node, a heavy-noise shared node,
// and a jittery wide-area interconnect — are characterized by
// microbenchmarks (FTQ + ping-pong), and each resulting signature
// parameterizes an analysis of the SAME trace, predicting how the
// application would behave there.
//
//	go run ./examples/signature
package main

import (
	"fmt"
	"log"
	"os"

	"mpgraph"
	"mpgraph/internal/report"
)

func main() {
	// Trace the application once on the quiet platform.
	prog, err := mpgraph.Workload("cg", mpgraph.WorkloadOptions{Iterations: 20})
	if err != nil {
		log.Fatal(err)
	}
	run, err := mpgraph.Trace(mpgraph.RunConfig{
		Machine: mpgraph.MachineConfig{NRanks: 16, Seed: 11},
	}, prog)
	if err != nil {
		log.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced on quiet platform: makespan %d cycles\n\n", run.Makespan)

	// Candidate platforms, described only by their machine models —
	// the analyzer never sees these, only the microbenchmark output.
	platforms := map[string]mpgraph.MachineConfig{
		"desktop-noise": {
			NRanks: 2, Seed: 21,
			Noise: mpgraph.MustParseDistribution("exponential:150"),
		},
		"shared-node": {
			NRanks: 2, Seed: 22,
			Noise: mpgraph.MustParseDistribution("spike:0.05,exponential:20000"),
		},
		"jittery-wan": {
			NRanks: 2, Seed: 23,
			Latency: mpgraph.MustParseDistribution("shifted:5000,exponential:3000"),
		},
	}

	tbl := report.NewTable("predicted behaviour of the traced CG run per platform signature",
		"platform", "ftq-noise-mean", "latency-p95", "max-delay", "slowdown")
	for _, name := range []string{"desktop-noise", "shared-node", "jittery-wan"} {
		mcfg := platforms[name]
		sig, err := mpgraph.MeasureSignature(mcfg, mpgraph.MicrobenchConfig{
			FTQSamples: 1000, PingPongSamples: 500, BandwidthSamples: 10,
		}, name)
		if err != nil {
			log.Fatal(err)
		}
		model := mpgraph.ModelFromSignature(sig, 99)
		set.Reset() // trace sets are single-use; rewind between analyses
		res, err := mpgraph.Analyze(set, model, mpgraph.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(name,
			fmt.Sprintf("%.0f", sig.NoiseSummary().Mean),
			fmt.Sprintf("%.0f", sig.LatencySummary().P95),
			fmt.Sprintf("%.0f", res.MaxFinalDelay),
			fmt.Sprintf("%.2f%%", 100*res.MaxFinalDelay/float64(run.Makespan)))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nslowdown = predicted extra runtime / traced runtime")
}
