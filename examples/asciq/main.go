// ASCI Q resonance: the phenomenon behind the paper's Section 5.1
// citation of Petrini, Kerbyson & Pakin, "The Case of the Missing
// Supercomputer Performance" — rare per-node daemon noise that is
// individually negligible destroys fine-grained collective codes at
// scale, because every allreduce waits for whichever rank was hit.
//
// This program traces the same allreduce-per-step kernel at several
// world sizes and two granularities, then analyzes each trace under a
// spike noise model (0.5% of events lose 1 ms ≈ 2M cycles). The
// fine-grained code's slowdown grows sharply with scale while the
// coarse-grained one barely moves — the resonance the ASCI Q team
// measured, regenerated from traces in milliseconds.
//
//	go run ./examples/asciq
package main

import (
	"fmt"
	"log"
	"os"

	"mpgraph"
	"mpgraph/internal/report"
)

func main() {
	// Per-rank spike noise: each compute quantum has a 0.5% chance of
	// losing 2M cycles (~1 ms at 2 GHz) to a daemon.
	noise := mpgraph.MustParseDistribution("spike:0.005,constant:2000000")

	grains := []struct {
		label   string
		compute int64
	}{
		{"fine (0.1M cycles/step)", 100_000},
		{"coarse (10M cycles/step)", 10_000_000},
	}

	tbl := report.NewTable(
		"allreduce-per-step kernel under spike noise (0.5% of quanta lose 2M cycles)",
		"ranks", "granularity", "traced-makespan", "predicted-slowdown")

	for _, p := range []int{8, 32, 128} {
		for _, g := range grains {
			prog := func(r *mpgraph.Rank) error {
				for i := 0; i < 30; i++ {
					r.Compute(g.compute)
					r.Allreduce(8)
				}
				return nil
			}
			run, err := mpgraph.Trace(mpgraph.RunConfig{
				Machine: mpgraph.MachineConfig{NRanks: p, Seed: 1},
			}, prog)
			if err != nil {
				log.Fatal(err)
			}
			set, err := run.TraceSet()
			if err != nil {
				log.Fatal(err)
			}
			res, err := mpgraph.Analyze(set, &mpgraph.Model{
				Seed:         7,
				OSNoise:      noise,
				NoiseQuantum: 100_000, // sample noise per 0.1M-cycle quantum
			}, mpgraph.AnalyzeOptions{})
			if err != nil {
				log.Fatal(err)
			}
			tbl.AddRow(p, g.label, run.Makespan,
				fmt.Sprintf("%.1f%%", 100*res.MaxFinalDelay/float64(run.Makespan)))
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfine-grained + collectives resonates with rare noise (slowdown grows with p);")
	fmt.Println("coarse-grained work absorbs the same noise — the ASCI Q effect.")
}
