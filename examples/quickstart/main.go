// Quickstart: trace a small program on the simulated cluster, build
// its message-passing graph, inject perturbations, and print the
// outcome — the whole pipeline in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpgraph"
)

func main() {
	// 1. Write an ordinary per-rank program against the runtime API.
	program := func(r *mpgraph.Rank) error {
		peer := r.Size() - 1 - r.Rank() // pair up across the middle
		for i := 0; i < 5; i++ {
			r.Compute(10_000) // 10k cycles of local work
			if peer != r.Rank() {
				r.Sendrecv(peer, 0, 4096, peer, 0)
			}
			r.Allreduce(8) // global convergence check
		}
		return nil
	}

	// 2. Trace it on an 8-rank virtual cluster.
	run, err := mpgraph.Trace(mpgraph.RunConfig{
		Machine: mpgraph.MachineConfig{NRanks: 8, Seed: 42},
	}, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced run: makespan %d cycles, %d messages, %d collectives\n",
		run.Makespan, run.Stats.Messages, run.Stats.Collectives)

	set, err := run.TraceSet()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask a what-if question: how much slower would this run be on
	// a platform that loses ~200 cycles to the OS around every event
	// and occasionally (1%) stalls a message by 5000 cycles?
	model := &mpgraph.Model{
		Seed:       1,
		OSNoise:    mpgraph.MustParseDistribution("exponential:200"),
		MsgLatency: mpgraph.MustParseDistribution("spike:0.01,constant:5000"),
	}
	res, err := mpgraph.Analyze(set, model, mpgraph.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("perturbed: max final delay %.0f cycles (%.2f%% of the traced makespan)\n",
		res.MaxFinalDelay, 100*res.MaxFinalDelay/float64(run.Makespan))
	for rank, rr := range res.Ranks {
		fmt.Printf("  rank %d: +%.0f cycles (%d merges absorbed, %d propagated)\n",
			rank, rr.FinalDelay, rr.Absorbed, rr.Propagated)
	}
	for _, w := range res.Warnings {
		fmt.Println("warning:", w)
	}
}
