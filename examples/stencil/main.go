// Stencil noise sensitivity: trace a 2-D halo-exchange code and a
// collective-heavy CG-like solver, then compare how each amplifies the
// same OS-noise model — the kind of application-vs-platform question
// the paper's methodology is built to answer ("the degree of
// suitability of a parallel program to a particular platform", §4.2).
//
// For each workload the program sweeps the OS-noise mean and prints
// the amplification factor: total delay induced across ranks divided
// by total noise injected. Collective-dominated codes amplify noise
// (one straggler stalls everyone); loosely coupled codes absorb it.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"os"

	"mpgraph"
	"mpgraph/internal/report"
)

func traceOf(name string, nranks int) *mpgraph.TraceSet {
	prog, err := mpgraph.Workload(name, mpgraph.WorkloadOptions{Iterations: 12})
	if err != nil {
		log.Fatal(err)
	}
	run, err := mpgraph.Trace(mpgraph.RunConfig{
		Machine: mpgraph.MachineConfig{NRanks: nranks, Seed: 7},
	}, prog)
	if err != nil {
		log.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		log.Fatal(err)
	}
	return set
}

func main() {
	const nranks = 16
	workloadNames := []string{"stencil2d", "cg", "pipeline", "masterworker"}

	// Same expected magnitude (mean 200 cycles/edge), different shapes:
	// smooth jitter vs rare large stalls vs a constant tax.
	noiseShapes := []struct{ label, spec string }{
		{"constant", "constant:200"},
		{"uniform", "uniform:0,400"},
		{"exponential", "exponential:200"},
		{"spike(1%)", "spike:0.01,constant:20000"},
		{"pareto", "pareto:80,1.667"},
	}
	tbl := report.NewTable(
		fmt.Sprintf("OS-noise amplification on %d ranks (mean 200 cycles/edge)", nranks),
		append([]string{"noise-shape"}, workloadNames...)...)

	for _, shape := range noiseShapes {
		row := []interface{}{shape.label}
		for _, name := range workloadNames {
			model := &mpgraph.Model{
				Seed:    1,
				OSNoise: mpgraph.MustParseDistribution(shape.spec),
			}
			res, err := mpgraph.Analyze(traceOf(name, nranks), model, mpgraph.AnalyzeOptions{})
			if err != nil {
				log.Fatal(err)
			}
			var injected, finalSum float64
			for _, rr := range res.Ranks {
				injected += rr.InjectedLocal
				finalSum += rr.FinalDelay
			}
			row = append(row, fmt.Sprintf("%.2fx", finalSum/injected))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\namplification = Σ final per-rank delay / Σ injected local noise")
	fmt.Println("(>1: perturbations propagate across ranks; <1: slack absorbs them)")
}
