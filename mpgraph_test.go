package mpgraph

import (
	"os"
	"strings"
	"testing"
)

func TestFacadePipeline(t *testing.T) {
	prog, err := Workload("tokenring", WorkloadOptions{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	run, err := Trace(RunConfig{Machine: MachineConfig{NRanks: 8, Seed: 1}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(set, &Model{
		MsgLatency: MustParseDistribution("constant:100"),
	}, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFinalDelay <= 0 {
		t.Fatal("no delay propagated through facade pipeline")
	}
}

func TestFacadeSignatureToModel(t *testing.T) {
	noisy := MachineConfig{NRanks: 2, Seed: 2,
		Noise: MustParseDistribution("exponential:100")}
	sig, err := MeasureSignature(noisy, MicrobenchConfig{
		FTQSamples: 300, PingPongSamples: 100, BandwidthSamples: 5}, "noisy")
	if err != nil {
		t.Fatal(err)
	}
	model := ModelFromSignature(sig, 7)
	if model.OSNoise == nil || model.MsgLatency == nil {
		t.Fatal("model missing distributions")
	}

	prog, err := Workload("cg", WorkloadOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	run, err := Trace(RunConfig{Machine: MachineConfig{NRanks: 4, Seed: 3}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(set, model, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFinalDelay <= 0 {
		t.Fatal("signature-derived model injected nothing")
	}
}

func TestFacadeDOT(t *testing.T) {
	prog, err := Workload("tokenring", WorkloadOptions{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := Trace(RunConfig{Machine: MachineConfig{NRanks: 3, Seed: 4}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(set)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.DOT("t"), "digraph") {
		t.Fatal("DOT export broken through facade")
	}
}

func TestFacadeReplay(t *testing.T) {
	prog, err := Workload("pipeline", WorkloadOptions{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	run, err := Trace(RunConfig{Machine: MachineConfig{NRanks: 4, Seed: 5}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(set, ReplayParams{Latency: 500, BytesPerCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("replay produced nothing")
	}
}

func TestFacadeTraceDir(t *testing.T) {
	dir := t.TempDir()
	prog, err := Workload("bsp", WorkloadOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Trace(RunConfig{Machine: MachineConfig{NRanks: 3, Seed: 6},
		TraceDir: dir}, prog); err != nil {
		t.Fatal(err)
	}
	set, closeFn, err := OpenTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	res, err := Analyze(set, &Model{}, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NRanks != 3 {
		t.Fatalf("NRanks = %d", res.NRanks)
	}
}

func TestWorkloadNamesExposed(t *testing.T) {
	names := WorkloadNames()
	if len(names) < 8 {
		t.Fatalf("only %d workloads", len(names))
	}
}

func TestFacadeSweep(t *testing.T) {
	res, err := Sweep(SweepConfig{
		Workload:        "tokenring",
		WorkloadOptions: WorkloadOptions{Iterations: 3},
		Machine:         MachineConfig{NRanks: 4, Seed: 1},
		Param:           SweepLatency,
		From:            0, To: 200, Step: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || !res.HasFit {
		t.Fatalf("sweep result: %d points, fit=%v", len(res.Points), res.HasFit)
	}
}

func TestFacadeLoadScenario(t *testing.T) {
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, []byte(`{"os_noise":"constant:5"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.OSNoise == nil {
		t.Fatal("scenario model empty")
	}
	if _, err := LoadScenario("/missing.json"); err == nil {
		t.Fatal("missing scenario accepted")
	}
}
